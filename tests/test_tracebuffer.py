"""Tests for the columnar trace substrate (repro.trace.TraceBuffer).

The load-bearing property is exact equivalence: for every registered
workload (and the Table II mixes) the buffer columns must match the legacy
``generate()`` record stream field-for-field, ``.npz`` persistence must
round-trip bit-for-bit, and replaying a buffer through a system must
reproduce the per-record path's results exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.block import AccessType, MemoryAccess
from repro.sim.config import SystemConfig
from repro.sim.engine import TraceCache
from repro.sim.multicore import MultiCoreSystem
from repro.sim.store import trace_key, try_trace_key
from repro.sim.system import SimulatedSystem
from repro.trace import (
    KIND_CODES,
    TraceBuffer,
    TraceShard,
    as_trace_buffer,
    plan_shards,
    shard_spans,
)
from repro.workloads import (
    APPLICATIONS,
    MIXES,
    build_workload,
    generate_mix_buffers,
    generate_mix_traces,
)

#: A spread of behaviours for the heavier (simulation-driving) tests.
SAMPLE_APPS = ("gapbs.bfs", "605.mcf", "stream", "gups", "602.gcc")


def assert_buffer_matches_records(buffer: TraceBuffer, records) -> None:
    """Field-for-field comparison against a legacy record list."""
    assert len(buffer) == len(records)
    assert buffer.address.tolist() == [a.address for a in records]
    assert buffer.pc.tolist() == [a.pc for a in records]
    assert buffer.kind.tolist() == [KIND_CODES[a.access_type]
                                    for a in records]
    assert buffer.size.tolist() == [a.size for a in records]
    assert buffer.dependent.tolist() == [a.depends_on_previous
                                         for a in records]
    assert buffer.non_memory.tolist() == [a.non_memory_instructions
                                          for a in records]
    assert buffer.thread_id.tolist() == [a.thread_id for a in records]


class TestGenerationEquivalence:
    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    def test_buffer_equals_legacy_stream(self, name):
        workload = build_workload(name)
        legacy = workload.generate(300, seed=5)
        buffer = build_workload(name).generate_buffer(300, seed=5)
        assert_buffer_matches_records(buffer, legacy)
        assert buffer == legacy  # __eq__ accepts record sequences too

    def test_base_address_and_thread_id_respected(self):
        workload = build_workload("stream")
        legacy = workload.generate(100, seed=2, base_address=1 << 36,
                                   thread_id=3)
        buffer = workload.generate_buffer(100, seed=2, base_address=1 << 36,
                                          thread_id=3)
        assert_buffer_matches_records(buffer, legacy)
        assert set(buffer.thread_id.tolist()) == {3}

    @pytest.mark.parametrize("mix", sorted(MIXES))
    def test_mix_buffers_equal_mix_traces(self, mix):
        legacy = generate_mix_traces(mix, accesses_per_core=120, seed=0)
        buffers = generate_mix_buffers(mix, accesses_per_core=120, seed=0)
        assert len(buffers) == len(legacy)
        for buffer, records in zip(buffers, legacy):
            assert_buffer_matches_records(buffer, records)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            build_workload("gups").generate_buffer(0)


class TestBufferSemantics:
    def test_slicing_is_zero_copy(self):
        buffer = build_workload("gapbs.pr").generate_buffer(500, seed=0)
        view = buffer[100:400]
        assert len(view) == 300
        assert np.shares_memory(view.address, buffer.address)
        assert view.address.tolist() == buffer.address.tolist()[100:400]

    def test_sliced_derived_columns_stay_views(self):
        buffer = build_workload("gapbs.pr").generate_buffer(200, seed=0)
        blocks = buffer.block_column()
        view = buffer[50:]
        assert np.shares_memory(view.block_column(), blocks)

    def test_block_and_page_columns_match_scalar_decomposition(self):
        buffer = build_workload("605.mcf").generate_buffer(400, seed=1)
        addresses = buffer.address.tolist()
        assert buffer.block_column(64).tolist() == \
            [a & ~63 for a in addresses]
        assert buffer.page_column(4096).tolist() == \
            [a >> 12 for a in addresses]

    def test_round_trip_through_records(self):
        buffer = build_workload("hpcg").generate_buffer(150, seed=4)
        records = buffer.to_accesses()
        assert all(isinstance(r, MemoryAccess) for r in records)
        assert TraceBuffer.from_accesses(records) == buffer
        assert as_trace_buffer(records) == buffer
        assert as_trace_buffer(buffer) is buffer

    def test_indexing_rebuilds_records(self):
        workload = build_workload("gups")
        buffer = workload.generate_buffer(50, seed=9)
        legacy = workload.generate(50, seed=9)
        assert buffer[7] == legacy[7]
        assert buffer[7].access_type in (AccessType.LOAD, AccessType.STORE)

    def test_replay_columns_reject_non_demand_kinds(self):
        buffer = TraceBuffer.from_accesses(
            [MemoryAccess(address=64, access_type=AccessType.PREFETCH)])
        with pytest.raises(ValueError):
            buffer.replay_columns()

    def test_summary_counts(self):
        buffer = build_workload("gups").generate_buffer(1000, seed=0)
        summary = buffer.summary()
        assert summary["accesses"] == 1000
        assert summary["loads"] + summary["stores"] == 1000
        assert summary["footprint_bytes"] == summary["unique_blocks"] * 64
        assert summary["buffer_bytes"] == buffer.nbytes
        # gups barely reuses blocks, so the footprint is nearly maximal.
        assert summary["unique_blocks"] > 900

    def test_pickle_round_trip_drops_derived_columns(self):
        import pickle

        buffer = build_workload("stream").generate_buffer(100, seed=0)
        buffer.block_column()
        clone = pickle.loads(pickle.dumps(buffer))
        assert clone == buffer
        assert clone._derived == {}


class TestShardPlanning:
    """Shard-boundary slicing: spans, overlap windows, view semantics."""

    def test_spans_cover_exactly_and_stay_balanced(self):
        for length in (1, 2, 7, 100, 101, 4096):
            for shards in (1, 2, 3, 8):
                spans = shard_spans(length, shards)
                assert spans[0][0] == 0
                assert spans[-1][1] == length
                # Contiguous, non-empty, sizes differ by at most one.
                for (_, end), (start, _) in zip(spans, spans[1:]):
                    assert end == start
                sizes = [end - start for start, end in spans]
                assert all(size > 0 for size in sizes)
                assert max(sizes) - min(sizes) <= 1

    def test_spans_on_short_traces_never_go_empty(self):
        # Fewer rows than shards: one single-row span per row, no empties.
        assert shard_spans(3, 8) == [(0, 1), (1, 2), (2, 3)]
        assert shard_spans(1, 4) == [(0, 1)]
        assert shard_spans(0, 4) == []

    def test_spans_reject_non_positive_shard_counts(self):
        with pytest.raises(ValueError):
            shard_spans(100, 0)
        with pytest.raises(ValueError):
            shard_spans(100, -1)

    def test_plan_warmup_semantics(self):
        plan = plan_shards(1000, 4, warmup_accesses=100, overlap=64)
        assert len(plan) == 4
        # Shard 0 warms up on the job's own prefix; later shards on a
        # bounded overlap window immediately before their span.
        assert plan[0].start == 100 and plan[0].warmup == 100
        for shard in plan[1:]:
            assert shard.warmup == 64
        assert plan[-1].end == 1000
        # Measured spans partition [warmup, length) exactly.
        for left, right in zip(plan, plan[1:]):
            assert left.end == right.start

    def test_plan_overlap_clamps_to_available_prefix(self):
        plan = plan_shards(40, 4, warmup_accesses=0, overlap=1 << 20)
        assert plan[0].warmup == 0
        for shard in plan[1:]:
            assert shard.warmup == shard.start  # clamped, never past row 0

    def test_plan_degenerate_inputs(self):
        # Warm-up swallowing the whole trace leaves nothing to measure.
        assert plan_shards(100, 4, warmup_accesses=100) == []
        assert plan_shards(100, 4, warmup_accesses=200) == []
        # More shards than measured rows: one shard per row.
        short = plan_shards(13, 8, warmup_accesses=10, overlap=2)
        assert len(short) == 3
        assert [(s.start, s.end) for s in short] == \
            [(10, 11), (11, 12), (12, 13)]
        with pytest.raises(ValueError):
            plan_shards(100, 4, warmup_accesses=-1)
        with pytest.raises(ValueError):
            plan_shards(100, 4, overlap=-1)

    def test_shard_invariants_enforced(self):
        with pytest.raises(ValueError):
            TraceShard(index=-1, start=0, end=10, warmup=0)
        with pytest.raises(ValueError):
            TraceShard(index=0, start=10, end=10, warmup=0)  # empty span
        with pytest.raises(ValueError):
            TraceShard(index=1, start=5, end=10, warmup=6)  # before row 0

    def test_shard_views_are_views_not_copies(self):
        buffer = build_workload("gapbs.pr").generate_buffer(600, seed=3)
        for shard in plan_shards(len(buffer), 4, warmup_accesses=120,
                                 overlap=32):
            warm, measured = buffer.shard_views(shard)
            assert len(warm) == shard.warmup
            assert len(measured) == shard.end - shard.start
            assert np.shares_memory(measured.address, buffer.address)
            if len(warm):
                assert np.shares_memory(warm.address, buffer.address)
            assert measured.address.tolist() == \
                buffer.address.tolist()[shard.start:shard.end]

    def test_shard_views_concatenation_recovers_measured_region(self):
        buffer = build_workload("stream").generate_buffer(257, seed=1)
        rows = []
        for shard in plan_shards(len(buffer), 8, warmup_accesses=7):
            _, measured = buffer.shard_views(shard)
            rows.extend(measured.address.tolist())
        assert rows == buffer.address.tolist()[7:]

    def test_shard_views_reject_out_of_range_spans(self):
        buffer = build_workload("gups").generate_buffer(50, seed=0)
        with pytest.raises(ValueError):
            buffer.shard_views(TraceShard(index=0, start=0, end=51,
                                          warmup=0))


class TestPersistence:
    def test_npz_round_trip_is_exact(self, tmp_path):
        for name in SAMPLE_APPS:
            buffer = build_workload(name).generate_buffer(250, seed=3)
            path = buffer.save(tmp_path / f"{name}.npz")
            assert TraceBuffer.load(path) == buffer

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "trace.npz"
        np.savez(path, schema=np.array("not-a-trace"), address=np.zeros(1))
        with pytest.raises(ValueError):
            TraceBuffer.load(path)


class TestReplayEquivalence:
    @pytest.mark.parametrize("name", SAMPLE_APPS)
    @pytest.mark.parametrize("predictor", ("baseline", "lp"))
    def test_buffer_replay_matches_per_record_path(self, name, predictor):
        workload = build_workload(name)
        legacy = workload.generate(400, seed=0)
        buffer = workload.generate_buffer(400, seed=0)

        via_records = SimulatedSystem(
            SystemConfig.paper_single_core(predictor)).run_trace(
            legacy, name)
        via_buffer = SimulatedSystem(
            SystemConfig.paper_single_core(predictor)).run_trace(
            buffer, name)

        assert via_buffer.execution.cycles == via_records.execution.cycles
        assert via_buffer.execution.instructions == \
            via_records.execution.instructions
        assert via_buffer.cache_hierarchy_energy_nj == \
            via_records.cache_hierarchy_energy_nj
        assert via_buffer.energy_breakdown == via_records.energy_breakdown
        for field in ("demand_accesses", "loads", "stores", "l1_hits",
                      "l2_hits", "l3_hits", "memory_accesses",
                      "total_demand_latency", "miss_latency", "predictions",
                      "recoveries"):
            assert getattr(via_buffer.hierarchy_stats, field) == \
                getattr(via_records.hierarchy_stats, field), field

    def test_multicore_buffer_replay_matches_per_record_path(self):
        legacy = generate_mix_traces("mix1", accesses_per_core=200, seed=0)
        buffers = generate_mix_buffers("mix1", accesses_per_core=200, seed=0)

        via_records = MultiCoreSystem(
            SystemConfig.paper_multi_core("lp")).run_traces(legacy)
        via_buffers = MultiCoreSystem(
            SystemConfig.paper_multi_core("lp")).run_traces(buffers)

        assert via_buffers.aggregate_ipc == via_records.aggregate_ipc
        assert via_buffers.cache_hierarchy_energy_nj == \
            via_records.cache_hierarchy_energy_nj
        assert via_buffers.accuracy_breakdown == \
            via_records.accuracy_breakdown
        for mine, theirs in zip(via_buffers.per_core_execution,
                                via_records.per_core_execution):
            assert mine.cycles == theirs.cycles
            assert mine.instructions == theirs.instructions


class TestDiskSpill:
    def test_generate_spill_load_cycle(self, tmp_path):
        cold = TraceCache(spill_dir=tmp_path)
        buffer = cold.get("gapbs.bfs", 300, seed=7)
        assert cold.disk_spills == 1 and cold.disk_hits == 0
        key = trace_key("gapbs.bfs", 300, seed=7)
        assert (tmp_path / f"{key}.npz").is_file()

        warm = TraceCache(spill_dir=tmp_path)
        loaded = warm.get("gapbs.bfs", 300, seed=7)
        assert warm.disk_hits == 1 and warm.disk_spills == 0
        assert loaded == buffer
        # Second lookup is an in-memory hit, not another disk read.
        assert warm.get("gapbs.bfs", 300, seed=7) is loaded
        assert warm.disk_hits == 1

    def test_env_resolution(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        cache = TraceCache()
        cache.get("stream", 100)
        assert cache.disk_spills == 1

        # Empty REPRO_TRACE_DIR disables spilling even with a store named.
        monkeypatch.setenv("REPRO_TRACE_DIR", "")
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        cache = TraceCache()
        cache.get("stream", 100)
        assert cache.disk_spills == 0

        # REPRO_STORE alone spills under <store>/traces.
        monkeypatch.delenv("REPRO_TRACE_DIR")
        cache = TraceCache()
        cache.get("stream", 100)
        assert cache.disk_spills == 1
        assert list((tmp_path / "store" / "traces").glob("*.npz"))

    @pytest.mark.parametrize("corruption", ("garbage", "truncated-zip",
                                            "foreign-npz"))
    def test_corrupt_spill_regenerates(self, tmp_path, capsys, corruption):
        key = trace_key("stream", 120, seed=0)
        path = tmp_path / f"{key}.npz"
        if corruption == "garbage":
            path.write_bytes(b"not an npz file")
        elif corruption == "truncated-zip":
            path.write_bytes(b"PK\x03\x04truncated")  # BadZipFile
        else:
            np.savez(path, other=np.zeros(3))  # no 'schema' -> KeyError
        cache = TraceCache(spill_dir=tmp_path)
        buffer = cache.get("stream", 120, seed=0)
        assert buffer == build_workload("stream").generate(120, seed=0)
        assert "unreadable trace spill" in capsys.readouterr().err

    def test_trace_keys_stable_and_state_sensitive(self):
        assert trace_key("gapbs.pr", 100) == trace_key("gapbs.pr", 100)
        assert trace_key("gapbs.pr", 100) != trace_key("gapbs.pr", 101)
        assert trace_key("gapbs.pr", 100) != trace_key("gapbs.pr", 100,
                                                       seed=1)
        # Name specs resolve to full generator state, so the equivalent
        # Workload object addresses the same on-disk trace.
        assert trace_key(build_workload("gapbs.pr"), 100) == \
            trace_key("gapbs.pr", 100)

    def test_unfingerprintable_workload_skips_disk(self, tmp_path):
        class Opaque:
            pass

        workload = build_workload("gups")
        workload.blob = Opaque()  # not canonicalizable
        assert try_trace_key(workload, 50) is None
        cache = TraceCache(spill_dir=tmp_path)
        cache.get(workload, 50)
        assert cache.disk_spills == 0
        assert not list(tmp_path.glob("*.npz"))


class TestConcurrentSpill:
    """Regression for the daemon-era spill race: the save() temp name was
    unique per *process* only, so two worker threads spilling the same
    trace key shared one temp file — each truncating the other mid-write —
    and the atomic rename could promote a torn archive."""

    def test_temp_names_are_unique_per_call(self, tmp_path, monkeypatch):
        import os
        import re

        from repro.trace import _SAVE_SERIAL
        del _SAVE_SERIAL  # the serial exists and is importable
        buffer = build_workload("stream").generate_buffer(50, seed=0)
        seen = set()
        original_replace = os.replace

        def record(src, dst):
            seen.add(str(src))
            return original_replace(src, dst)

        monkeypatch.setattr(os, "replace", record)
        for _ in range(3):
            buffer.save(tmp_path / "trace.npz")
        assert len(seen) == 3
        for name in seen:
            assert re.search(r"\.\d+\.\d+\.\d+\.tmp\.npz$", name)

    def test_many_threads_saving_one_path_never_tear_it(self, tmp_path):
        import threading

        buffer = build_workload("gups").generate_buffer(400, seed=7)
        path = tmp_path / "trace.npz"
        errors = []
        barrier = threading.Barrier(8)

        def spill():
            try:
                barrier.wait()
                for _ in range(5):
                    buffer.save(path)
                    # Every observable file state must be a complete,
                    # loadable archive equal to the buffer.
                    assert TraceBuffer.load(path) == buffer
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=spill) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        assert TraceBuffer.load(path) == buffer
        # No temp droppings left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["trace.npz"]

    def test_concurrent_cache_spills_of_one_key(self, tmp_path):
        import threading

        errors = []
        barrier = threading.Barrier(4)

        def warm():
            try:
                barrier.wait()
                cache = TraceCache(spill_dir=tmp_path)
                cache.get("stream", 150, seed=3)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=warm) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        key = trace_key("stream", 150, seed=3)
        loaded = TraceBuffer.load(tmp_path / f"{key}.npz")
        assert loaded == build_workload("stream").generate(150, seed=3)

    def test_shared_cache_threads_get_the_identical_buffer(self):
        """The thread-safe LRU hands every caller of a key one object."""
        import threading

        cache = TraceCache(spill_dir=None)
        results = []
        barrier = threading.Barrier(6)

        def fetch():
            barrier.wait()
            results.append(cache.get("gups", 120, seed=1))

        threads = [threading.Thread(target=fetch) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert len(results) == 6
        first = results[0]
        assert all(buffer is first for buffer in results)
