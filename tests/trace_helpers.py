"""Shared access-construction helpers for the reproduction test suite.

Kept in a dedicated module (not ``conftest.py``) so test modules can import
them absolutely: pytest imports every ``conftest.py`` under the plain module
name ``conftest``, which collides between ``tests/`` and ``benchmarks/``.
"""

from __future__ import annotations

from repro.memory.block import AccessType, MemoryAccess


def make_load(address: int, pc: int = 0x100,
              dependent: bool = False) -> MemoryAccess:
    """Convenience constructor used across test modules."""
    return MemoryAccess(address=address, access_type=AccessType.LOAD, pc=pc,
                        depends_on_previous=dependent)


def make_store(address: int, pc: int = 0x200) -> MemoryAccess:
    return MemoryAccess(address=address, access_type=AccessType.STORE, pc=pc)
