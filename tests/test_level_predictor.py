"""Unit tests for the proposed level predictor (LocMap + PLD) and its base."""

from __future__ import annotations

import pytest

from repro.core.base import (
    Prediction,
    PredictionOutcome,
    SequentialPredictor,
    classify_prediction,
)
from repro.core.level_predictor import CacheLevelPredictor, LevelPredictorConfig
from repro.memory.block import Level


class TestPredictionType:
    def test_sequential_prediction(self):
        prediction = Prediction.sequential()
        assert prediction.is_sequential
        assert not prediction.is_multi_way
        assert prediction.nearest is Level.L2

    def test_multi_way_detection(self):
        prediction = Prediction(levels=(Level.L3, Level.MEM))
        assert prediction.is_multi_way
        assert prediction.targets(Level.MEM)
        assert not prediction.targets(Level.L2)

    def test_empty_prediction_is_sequential(self):
        assert Prediction(levels=()).is_sequential


class TestClassification:
    """The four-way breakdown of Figure 7."""

    def test_correct_sequential(self):
        outcome = classify_prediction(Prediction(levels=(Level.L2,)), Level.L2)
        assert outcome is PredictionOutcome.SEQUENTIAL

    def test_correct_skip(self):
        outcome = classify_prediction(Prediction(levels=(Level.L3,)), Level.L3)
        assert outcome is PredictionOutcome.SKIP

    def test_skip_when_memory_predicted_and_block_in_llc(self):
        # The collocated directory finds the block during the LLC check, so no
        # recovery is needed and L2 was still skipped correctly.
        outcome = classify_prediction(Prediction(levels=(Level.MEM,)), Level.L3)
        assert outcome is PredictionOutcome.SKIP

    def test_lost_opportunity(self):
        outcome = classify_prediction(Prediction(levels=(Level.L2,)), Level.MEM)
        assert outcome is PredictionOutcome.LOST_OPPORTUNITY

    def test_harmful_bypass_of_l2(self):
        outcome = classify_prediction(Prediction(levels=(Level.L3,)), Level.L2)
        assert outcome is PredictionOutcome.HARMFUL

    def test_multi_way_including_l2_is_never_harmful(self):
        outcome = classify_prediction(Prediction(levels=(Level.L2, Level.L3)),
                                      Level.L2)
        assert outcome is PredictionOutcome.SEQUENTIAL

    def test_l1_actual_rejected(self):
        with pytest.raises(ValueError):
            classify_prediction(Prediction.sequential(), Level.L1)


class TestSequentialPredictor:
    def test_always_predicts_l2_with_no_latency(self):
        predictor = SequentialPredictor()
        assert predictor.predict(0x40).levels == (Level.L2,)
        assert predictor.prediction_latency == 0
        assert predictor.storage_bits() == 0

    def test_statistics_accumulate(self):
        predictor = SequentialPredictor()
        prediction = predictor.predict(0x40)
        predictor.train(0x40, 0, prediction, Level.MEM)
        assert predictor.stats.predictions == 1
        assert predictor.stats.fraction(PredictionOutcome.LOST_OPPORTUNITY) == 1.0


class TestCacheLevelPredictor:
    def test_cold_predictor_uses_pld(self):
        predictor = CacheLevelPredictor()
        prediction = predictor.predict(0x100000)
        assert prediction.used_pld
        assert not prediction.metadata_hit

    def test_locmap_hit_after_demand_fill(self):
        predictor = CacheLevelPredictor()
        predictor.on_fill(0x4000, Level.L2)
        prediction = predictor.predict(0x4000)
        assert prediction.metadata_hit
        assert prediction.levels == (Level.L2,)

    def test_dirty_eviction_moves_prediction_down(self):
        predictor = CacheLevelPredictor()
        predictor.on_fill(0x4000, Level.L2)
        predictor.on_eviction(0x4000, Level.L2, dirty=True)
        assert predictor.predict(0x4000).levels == (Level.L3,)

    def test_pld_driven_prediction_tracks_popular_level(self):
        predictor = CacheLevelPredictor()
        for _ in range(30):
            predictor.on_hit(Level.MEM)
        # A block in a never-touched region misses the metadata cache and the
        # PLD supplies the (popular) level.
        prediction = predictor.predict(0x40_000_000)
        assert prediction.used_pld
        assert Level.MEM in prediction.levels

    def test_training_classifies_and_counts(self):
        predictor = CacheLevelPredictor()
        prediction = predictor.predict(0x8000)
        outcome = predictor.train(0x8000, 0, prediction, Level.MEM)
        assert outcome in PredictionOutcome
        assert predictor.stats.predictions == 1

    def test_one_cycle_latency_and_small_storage(self):
        predictor = CacheLevelPredictor()
        assert predictor.prediction_latency == 1
        # 2 KiB metadata cache + three 32-bit counters (Section V.F).
        assert predictor.storage_bits() == 2048 * 8 + 96

    def test_overhead_report_matches_paper(self):
        report = CacheLevelPredictor().overhead_report()
        assert report["metadata_cache_bytes"] == 2048
        assert report["memory_overhead_fraction"] == pytest.approx(0.0039, abs=1e-4)
        assert report["prediction_latency_cycles"] == 1

    def test_metadata_cache_size_configurable(self):
        predictor = CacheLevelPredictor(
            LevelPredictorConfig(metadata_cache_bytes=8192))
        assert predictor.locmap.metadata_cache.size_bytes == 8192
        # A bigger metadata cache costs more energy per prediction.
        small = CacheLevelPredictor(
            LevelPredictorConfig(metadata_cache_bytes=1024))
        assert (predictor.energy_per_prediction_nj()
                > small.energy_per_prediction_nj())

    def test_l1_fill_events_ignored(self):
        predictor = CacheLevelPredictor()
        predictor.on_fill(0x4000, Level.L1)
        assert predictor.locmap.peek(0x4000) is Level.MEM

    def test_reset_statistics_clears_everything(self):
        predictor = CacheLevelPredictor()
        prediction = predictor.predict(0x40)
        predictor.train(0x40, 0, prediction, Level.L3)
        predictor.reset_statistics()
        assert predictor.stats.predictions == 0
        assert predictor.pld.predictions == 0


class TestPredictorStats:
    def test_breakdown_sums_to_one(self):
        predictor = CacheLevelPredictor()
        for i in range(50):
            block = i * 64
            prediction = predictor.predict(block)
            predictor.train(block, 0, prediction,
                            Level.MEM if i % 2 else Level.L3)
        breakdown = predictor.stats.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_accuracy_is_one_minus_harmful(self):
        predictor = CacheLevelPredictor()
        predictor.on_fill(0x40, Level.L3)          # LocMap says L3
        prediction = predictor.predict(0x40)
        predictor.train(0x40, 0, prediction, Level.L2)   # actually in L2
        assert predictor.stats.accuracy == pytest.approx(0.0)
        assert predictor.stats.fraction(PredictionOutcome.HARMFUL) == 1.0
