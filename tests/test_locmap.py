"""Unit and property tests for the LocMap and its metadata cache."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.locmap import (
    BLOCKS_PER_LOCMAP_ENTRY,
    LocMap,
    MetadataCache,
    locmap_block_address,
)
from repro.memory.block import Level


class TestAddressMapping:
    def test_paper_mapping_formula(self):
        """LocMap address = base + (physical address >> 14)."""
        assert locmap_block_address(0) == 0
        assert locmap_block_address(1 << 14) == 1
        assert locmap_block_address((1 << 14) - 1) == 0
        assert locmap_block_address(5 << 14, base_address=0x1000) == 0x1000 + 5

    def test_one_locmap_block_covers_256_data_blocks(self):
        assert BLOCKS_PER_LOCMAP_ENTRY == 256
        # 256 blocks x 64 B = 16 KiB of data share one LocMap block.
        assert locmap_block_address(0) == locmap_block_address(16 * 1024 - 1)
        assert locmap_block_address(0) != locmap_block_address(16 * 1024)

    def test_memory_overhead_is_0_39_percent(self):
        locmap = LocMap()
        assert locmap.memory_overhead_fraction() == pytest.approx(2 / 512)


class TestMetadataCache:
    def test_paper_geometry(self):
        cache = MetadataCache(size_bytes=2048, associativity=2)
        assert cache.capacity_blocks == 32

    def test_miss_then_hit(self):
        cache = MetadataCache()
        assert not cache.lookup(5)
        cache.fill(5)
        assert cache.lookup(5)
        assert cache.stats.miss_ratio == pytest.approx(0.5)

    def test_lru_within_set(self):
        cache = MetadataCache(size_bytes=256, associativity=2)  # 2 sets
        # LocMap blocks 0, 2, 4 all map to set 0.
        cache.fill(0)
        cache.fill(2)
        cache.lookup(0)
        cache.fill(4)   # evicts 2
        assert cache.contains(0)
        assert not cache.contains(2)

    def test_contains_has_no_side_effects(self):
        cache = MetadataCache()
        cache.contains(7)
        assert cache.stats.accesses == 0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            MetadataCache(size_bytes=64, associativity=2)


class TestLocMapUpdates:
    def test_default_location_is_memory(self):
        locmap = LocMap()
        assert locmap.peek(0x1234) is Level.MEM

    def test_demand_fill_updates_location(self):
        locmap = LocMap()
        locmap.record_fill(0x40, Level.L2)
        assert locmap.peek(0x40) is Level.L2

    def test_demand_fill_warms_metadata_cache(self):
        locmap = LocMap()
        locmap.record_fill(0x40, Level.L2)
        assert locmap.query(0x40) is Level.L2
        assert locmap.metadata_cache.stats.hits == 1

    def test_prefetch_fill_ignored_on_metadata_miss(self):
        """Section III.C: prefetch fills that miss the metadata cache do not
        update the LocMap (the traffic is not worth the accuracy)."""
        locmap = LocMap()
        applied = locmap.record_fill(0x40, Level.L2, from_prefetch=True)
        assert not applied
        assert locmap.peek(0x40) is Level.MEM
        assert locmap.prefetch_updates_skipped == 1

    def test_prefetch_fill_applied_on_metadata_hit(self):
        locmap = LocMap()
        locmap.record_fill(0x40, Level.L2)              # warms the region
        applied = locmap.record_fill(0x80, Level.L3, from_prefetch=True)
        assert applied
        assert locmap.peek(0x80) is Level.L3

    def test_dirty_eviction_moves_block_down(self):
        locmap = LocMap()
        locmap.record_fill(0x40, Level.L2)
        locmap.record_eviction(0x40, Level.L2, dirty=True)
        assert locmap.peek(0x40) is Level.L3
        locmap.record_eviction(0x40, Level.L3, dirty=True)
        assert locmap.peek(0x40) is Level.MEM

    def test_clean_eviction_ignored(self):
        locmap = LocMap()
        locmap.record_fill(0x40, Level.L2)
        assert not locmap.record_eviction(0x40, Level.L2, dirty=False)
        assert locmap.peek(0x40) is Level.L2

    def test_cannot_record_l1(self):
        locmap = LocMap()
        with pytest.raises(ValueError):
            locmap.record_fill(0x40, Level.L1)


class TestLocMapQueries:
    def test_query_miss_returns_none_and_schedules_fetch(self):
        locmap = LocMap()
        assert locmap.query(0x123400) is None
        assert locmap.locmap_fetches_from_memory == 1
        # The covering LocMap block is now cached: the next query hits.
        assert locmap.query(0x123440) is Level.MEM

    def test_on_chip_storage_is_metadata_cache_only(self):
        locmap = LocMap(metadata_cache_bytes=2048)
        assert locmap.storage_bits_on_chip() == 2048 * 8

    def test_reset_statistics(self):
        locmap = LocMap()
        locmap.query(0x40)
        locmap.record_fill(0x40, Level.L2)
        locmap.reset_statistics()
        assert locmap.updates_applied == 0
        assert locmap.metadata_cache.stats.accesses == 0
        # Location contents survive a statistics reset.
        assert locmap.peek(0x40) is Level.L2


@given(events=st.lists(
    st.tuples(st.integers(min_value=0, max_value=255),
              st.sampled_from([Level.L2, Level.L3, Level.MEM]),
              st.booleans()),
    max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_peek_reflects_last_demand_fill(events):
    """After any sequence of demand fills, peek returns the last level written
    for each block (prefetch fills may or may not apply, demand always does)."""
    locmap = LocMap()
    last_demand = {}
    for block_index, level, from_prefetch in events:
        address = block_index * 64
        applied = locmap.record_fill(address, level, from_prefetch=from_prefetch)
        if not from_prefetch:
            assert applied
            last_demand[block_index] = level
    for block_index, level in last_demand.items():
        observed = locmap.peek(block_index * 64)
        assert observed in (level, Level.L2, Level.L3, Level.MEM)
        if not any(e[0] == block_index and e[2] for e in events):
            # No prefetch fills touched this block: must match exactly.
            assert observed is level
