"""Unit tests for the interconnect latency/contention model."""

from __future__ import annotations

import pytest

from repro.memory.interconnect import Interconnect, InterconnectConfig


class TestLatencies:
    def test_single_core_has_no_contention(self):
        ic = Interconnect(active_cores=1)
        assert ic.l2_to_llc_latency() == ic.config.l2_to_llc
        assert ic.llc_to_memory_latency() == ic.config.llc_to_memory

    def test_contention_grows_with_cores(self):
        single = Interconnect(active_cores=1)
        quad = Interconnect(active_cores=4)
        assert quad.l2_to_llc_latency() > single.l2_to_llc_latency()
        assert quad.recovery_latency() > single.recovery_latency()

    def test_private_hop_unaffected_by_contention(self):
        quad = Interconnect(active_cores=4)
        assert quad.l1_to_l2_latency() == quad.config.l1_to_l2

    def test_cache_to_cache_costs_both_hops(self):
        ic = Interconnect()
        assert ic.cache_to_cache_latency() >= (ic.config.l1_to_l2
                                               + ic.config.l2_to_llc)

    def test_transfer_counters(self):
        ic = Interconnect()
        ic.l1_to_l2_latency()
        ic.l2_to_llc_latency()
        ic.recovery_latency()
        assert ic.transfers == 2
        assert ic.recovery_transactions == 1
        ic.reset_statistics()
        assert ic.transfers == 0

    def test_custom_configuration(self):
        config = InterconnectConfig(l1_to_l2=5, l2_to_llc=9, llc_to_memory=11,
                                    recovery_transaction=13)
        ic = Interconnect(config)
        assert ic.l1_to_l2_latency() == 5
        assert ic.l2_to_llc_latency() == 9
        assert ic.llc_to_memory_latency() == 11
        assert ic.recovery_latency() == 13


class TestContention:
    """Arbitration/queueing edges of the shared-bus contention model."""

    def test_contention_is_linear_in_extra_cores(self):
        config = InterconnectConfig()
        per_core = config.contention_per_extra_core
        latencies = [Interconnect(config, active_cores=cores)
                     .l2_to_llc_latency() for cores in (1, 2, 3, 4)]
        deltas = [b - a for a, b in zip(latencies, latencies[1:])]
        assert deltas == [per_core] * 3

    def test_every_shared_hop_sees_the_same_contention(self):
        quad = Interconnect(active_cores=4)
        single = Interconnect(active_cores=1)
        penalty = quad.config.contention_per_extra_core * 3
        assert quad.l2_to_llc_latency() - single.l2_to_llc_latency() \
            == penalty
        assert quad.llc_to_memory_latency() \
            - single.llc_to_memory_latency() == penalty
        assert quad.recovery_latency() - single.recovery_latency() \
            == penalty
        assert quad.cache_to_cache_latency() \
            - single.cache_to_cache_latency() == penalty

    def test_non_positive_core_count_clamps_to_one(self):
        for cores in (0, -3):
            ic = Interconnect(active_cores=cores)
            assert ic.active_cores == 1
            assert ic.l2_to_llc_latency() == ic.config.l2_to_llc

    def test_custom_contention_weight(self):
        config = InterconnectConfig(l2_to_llc=4,
                                    contention_per_extra_core=2.5)
        ic = Interconnect(config, active_cores=3)
        assert ic.l2_to_llc_latency() == 4 + 2 * 2.5

    def test_zero_contention_weight_makes_hops_core_independent(self):
        config = InterconnectConfig(contention_per_extra_core=0.0)
        single = Interconnect(config, active_cores=1)
        many = Interconnect(config, active_cores=8)
        assert many.l2_to_llc_latency() == single.l2_to_llc_latency()
        assert many.recovery_latency() == single.recovery_latency()


class TestCounters:
    def test_recovery_is_not_counted_as_a_transfer(self):
        ic = Interconnect()
        ic.recovery_latency()
        assert ic.transfers == 0
        assert ic.recovery_transactions == 1

    def test_cache_to_cache_and_memory_hops_count_as_transfers(self):
        ic = Interconnect()
        ic.cache_to_cache_latency()
        ic.llc_to_memory_latency()
        assert ic.transfers == 2
        assert ic.recovery_transactions == 0

    def test_reset_clears_both_counters(self):
        ic = Interconnect()
        ic.l1_to_l2_latency()
        ic.recovery_latency()
        ic.reset_statistics()
        assert ic.transfers == 0
        assert ic.recovery_transactions == 0
        # Latencies are unaffected by the reset.
        assert ic.l1_to_l2_latency() == ic.config.l1_to_l2
