"""Unit tests for the interconnect latency/contention model."""

from __future__ import annotations

import pytest

from repro.memory.interconnect import Interconnect, InterconnectConfig


class TestLatencies:
    def test_single_core_has_no_contention(self):
        ic = Interconnect(active_cores=1)
        assert ic.l2_to_llc_latency() == ic.config.l2_to_llc
        assert ic.llc_to_memory_latency() == ic.config.llc_to_memory

    def test_contention_grows_with_cores(self):
        single = Interconnect(active_cores=1)
        quad = Interconnect(active_cores=4)
        assert quad.l2_to_llc_latency() > single.l2_to_llc_latency()
        assert quad.recovery_latency() > single.recovery_latency()

    def test_private_hop_unaffected_by_contention(self):
        quad = Interconnect(active_cores=4)
        assert quad.l1_to_l2_latency() == quad.config.l1_to_l2

    def test_cache_to_cache_costs_both_hops(self):
        ic = Interconnect()
        assert ic.cache_to_cache_latency() >= (ic.config.l1_to_l2
                                               + ic.config.l2_to_llc)

    def test_transfer_counters(self):
        ic = Interconnect()
        ic.l1_to_l2_latency()
        ic.l2_to_llc_latency()
        ic.recovery_latency()
        assert ic.transfers == 2
        assert ic.recovery_transactions == 1
        ic.reset_statistics()
        assert ic.transfers == 0

    def test_custom_configuration(self):
        config = InterconnectConfig(l1_to_l2=5, l2_to_llc=9, llc_to_memory=11,
                                    recovery_transaction=13)
        ic = Interconnect(config)
        assert ic.l1_to_l2_latency() == 5
        assert ic.l2_to_llc_latency() == 9
        assert ic.llc_to_memory_latency() == 11
        assert ic.recovery_latency() == 13
