"""Tests for the synthetic workload generators and the application registry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.block import AccessType
from repro.workloads import (
    APPLICATIONS,
    HIGHLIGHTED_APPLICATIONS,
    MIXES,
    SUITES,
    GraphWorkload,
    PhasedWorkload,
    PointerChaseWorkload,
    RandomAccessWorkload,
    StencilWorkload,
    StreamingWorkload,
    ZipfWorkload,
    applications_in_suite,
    build_workload,
    generate_mix_traces,
    get_application,
    get_mix,
    high_benefit_applications,
    make_gapbs_workload,
)


class TestRegistry:
    def test_all_highlighted_applications_registered(self):
        for name in HIGHLIGHTED_APPLICATIONS:
            assert name in APPLICATIONS
        assert len(HIGHLIGHTED_APPLICATIONS) == 21

    def test_suites_cover_all_applications(self):
        names = {name for members in SUITES.values() for name in members}
        assert names == set(APPLICATIONS)

    def test_gapbs_kernels_present(self):
        gapbs = applications_in_suite("gapbs")
        assert set(gapbs) == {"gapbs.bc", "gapbs.bfs", "gapbs.cc",
                              "gapbs.pr", "gapbs.tc"}

    def test_paper_green_box_members_marked_high(self):
        high = set(high_benefit_applications())
        for name in ("gups", "gapbs.pr", "619.lbm", "649.foton", "nas.is"):
            assert name in high

    def test_unknown_application_rejected(self):
        with pytest.raises(ValueError):
            get_application("notabenchmark")
        with pytest.raises(ValueError):
            applications_in_suite("notasuite")

    def test_every_application_builds_and_generates(self):
        for name in APPLICATIONS:
            workload = build_workload(name)
            trace = workload.generate(64, seed=3)
            assert len(trace) == 64
            assert all(access.address >= 0 for access in trace)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = build_workload("gapbs.pr").generate(200, seed=11)
        b = build_workload("gapbs.pr").generate(200, seed=11)
        assert [x.address for x in a] == [y.address for y in b]

    def test_different_seeds_differ(self):
        a = build_workload("gups").generate(200, seed=1)
        b = build_workload("gups").generate(200, seed=2)
        assert [x.address for x in a] != [y.address for y in b]

    def test_base_address_offsets_all_accesses(self):
        offset = 1 << 36
        a = build_workload("stream").generate(50, seed=5)
        b = build_workload("stream").generate(50, seed=5, base_address=offset)
        assert all(y.address - x.address == offset for x, y in zip(a, b))

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            build_workload("gups").generate(0)


class TestGeneratorBehaviours:
    def test_streaming_is_mostly_sequential(self):
        workload = StreamingWorkload("s", num_streams=1, irregularity=0.0,
                                     stride_bytes=64)
        trace = workload.generate(100, seed=0)
        deltas = [b.address - a.address for a, b in zip(trace, trace[1:])]
        assert all(delta == 64 for delta in deltas)

    def test_random_access_covers_wide_range(self):
        workload = RandomAccessWorkload("r", table_bytes=1 << 24)
        trace = workload.generate(500, seed=0)
        blocks = {access.address // 64 for access in trace}
        assert len(blocks) > 400  # almost no reuse

    def test_pointer_chase_marks_dependencies(self):
        workload = PointerChaseWorkload("p", chase_length=16)
        trace = workload.generate(200, seed=0)
        assert sum(access.depends_on_previous for access in trace) > 100

    def test_zipf_has_reuse_skew(self):
        workload = ZipfWorkload("z", footprint_bytes=1 << 20, zipf_alpha=1.2,
                                spatial_run_length=1, accesses_per_block=1)
        trace = workload.generate(2000, seed=0)
        blocks = [access.address // 64 for access in trace]
        unique = len(set(blocks))
        assert unique < len(blocks) * 0.8  # popular blocks repeat

    def test_stencil_emits_neighbour_reuse(self):
        workload = StencilWorkload("st", reuse_probability=1.0,
                                   gather_fraction=0.0, plane_bytes=1024,
                                   accesses_per_element=1)
        trace = workload.generate(100, seed=0)
        backwards = [b.address - a.address for a, b in zip(trace, trace[1:])
                     if b.address < a.address]
        assert backwards  # plane-behind neighbour accesses exist

    def test_phased_workload_switches_behaviour(self):
        small = ZipfWorkload("small", footprint_bytes=1 << 16)
        big = RandomAccessWorkload("big", table_bytes=1 << 26)
        workload = PhasedWorkload("phased", [small, big], phase_length=100)
        trace = workload.generate(400, seed=0)
        first_phase = {a.address // 64 for a in trace[:100]}
        second_phase = {a.address // 64 for a in trace[100:200]}
        assert max(second_phase) > max(first_phase)

    def test_phased_requires_phases(self):
        with pytest.raises(ValueError):
            PhasedWorkload("empty", [])

    def test_stores_present_when_requested(self):
        workload = StreamingWorkload("s", store_fraction=0.5, num_streams=1)
        trace = workload.generate(400, seed=0)
        stores = sum(1 for a in trace if a.access_type is AccessType.STORE)
        assert stores > 50


class TestGraphWorkload:
    def test_kernel_variants(self):
        assert make_gapbs_workload("pr").vertex_order == "sequential"
        assert make_gapbs_workload("bfs").vertex_order == "random"
        assert make_gapbs_workload("tc").intersection
        with pytest.raises(ValueError):
            make_gapbs_workload("sssp")

    def test_invalid_vertex_order(self):
        with pytest.raises(ValueError):
            GraphWorkload("g", vertex_order="sorted")

    def test_gathers_are_dependent_and_scattered(self):
        workload = make_gapbs_workload("pr")
        trace = workload.generate(1000, seed=0)
        dependent = [a for a in trace if a.depends_on_previous]
        assert len(dependent) > 200
        gather_blocks = {a.address // 64 for a in dependent}
        assert len(gather_blocks) > 100

    def test_offset_stream_is_regular(self):
        workload = make_gapbs_workload("pr")
        trace = workload.generate(2000, seed=0)
        offsets = [a for a in trace if a.pc == 0x6000]
        deltas = {b.address - a.address for a, b in zip(offsets, offsets[1:])}
        assert deltas == {8}


class TestMixes:
    def test_table2_mixes_present(self):
        assert set(MIXES) == {"mix1", "mix2", "mix3", "mix4", "mix5",
                              "MT1", "MT2"}
        assert get_mix("mix1").num_cores == 4
        assert get_mix("MT1").num_cores == 2

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            get_mix("mix9")

    def test_multiprogram_traces_use_disjoint_regions(self):
        traces = generate_mix_traces("mix1", accesses_per_core=50, seed=0)
        assert len(traces) == 4
        ranges = [(min(a.address for a in t), max(a.address for a in t))
                  for t in traces]
        for i in range(len(ranges)):
            for j in range(i + 1, len(ranges)):
                assert ranges[i][1] < ranges[j][0] or ranges[j][1] < ranges[i][0]

    def test_multithreaded_traces_share_data(self):
        traces = generate_mix_traces("MT2", accesses_per_core=400, seed=0)
        assert len(traces) == 4
        block_sets = [{a.address // 64 for a in t} for t in traces]
        shared = block_sets[0] & block_sets[1]
        assert shared  # threads touch common graph structures


@given(name=st.sampled_from(sorted(APPLICATIONS)),
       seed=st.integers(min_value=0, max_value=5))
@settings(max_examples=25, deadline=None)
def test_property_traces_are_wellformed(name, seed):
    """Every registered workload emits well-formed, reproducible accesses."""
    trace = build_workload(name).generate(80, seed=seed)
    assert len(trace) == 80
    for access in trace:
        assert access.address >= 0
        assert access.non_memory_instructions >= 0
        assert access.access_type in (AccessType.LOAD, AccessType.STORE)
