"""Tests for the content-addressed results store (`repro.sim.store`).

Covers the properties the CI determinism job relies on: job keys stable
across processes, exact result round-trips, resume after a partially
persisted grid, and the engine's read-through/force semantics.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim.config import SystemConfig
from repro.sim.engine import MixJob, SimulationEngine, SimulationJob
from repro.sim.store import (
    ResultStore,
    UncacheableJobError,
    deserialize_result,
    job_key,
    job_spec,
    serialize_result,
    try_job_key,
)
from repro.workloads import build_workload
from repro.workloads.base import Workload

SINGLE_JOB = SimulationJob(workload="gapbs.pr", predictor="lp",
                           num_accesses=200, warmup_accesses=50, seed=0)
MIX_JOB = MixJob(mix="mix1", predictor="lp", accesses_per_core=120, seed=0)


def small_grid(num_accesses: int = 200) -> list:
    return [SimulationJob(workload=app, predictor=predictor,
                          num_accesses=num_accesses, warmup_accesses=50,
                          seed=0)
            for app in ("gapbs.pr", "gups")
            for predictor in ("baseline", "lp")]


# ======================================================================
# Job keys
# ======================================================================
class TestJobKeys:
    def test_key_is_deterministic_within_process(self):
        assert job_key(SINGLE_JOB) == job_key(SINGLE_JOB)
        assert job_key(MIX_JOB) == job_key(MIX_JOB)

    def test_key_is_stable_across_processes(self):
        """A fresh interpreter computes the same key (no hash()/id() use)."""
        script = (
            "from repro.sim.engine import SimulationJob, MixJob\n"
            "from repro.sim.store import job_key\n"
            "print(job_key(SimulationJob(workload='gapbs.pr',"
            " predictor='lp', num_accesses=200, warmup_accesses=50,"
            " seed=0)))\n"
            "print(job_key(MixJob(mix='mix1', predictor='lp',"
            " accesses_per_core=120, seed=0)))\n"
        )
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        output = subprocess.run(
            [sys.executable, "-c", script], check=True, text=True,
            capture_output=True, env=env,
        ).stdout.split()
        assert output == [job_key(SINGLE_JOB), job_key(MIX_JOB)]

    def test_key_distinguishes_every_spec_dimension(self):
        base = SINGLE_JOB
        variants = [
            SimulationJob(workload="gups", predictor="lp", num_accesses=200,
                          warmup_accesses=50, seed=0),
            SimulationJob(workload="gapbs.pr", predictor="d2d",
                          num_accesses=200, warmup_accesses=50, seed=0),
            SimulationJob(workload="gapbs.pr", predictor="lp",
                          num_accesses=300, warmup_accesses=50, seed=0),
            SimulationJob(workload="gapbs.pr", predictor="lp",
                          num_accesses=200, warmup_accesses=60, seed=0),
            SimulationJob(workload="gapbs.pr", predictor="lp",
                          num_accesses=200, warmup_accesses=50, seed=7),
            SimulationJob(workload="gapbs.pr", predictor="lp",
                          num_accesses=200, warmup_accesses=50, seed=0,
                          config=SystemConfig.paper_multi_core()),
        ]
        keys = {job_key(job) for job in variants}
        assert len(keys) == len(variants)
        assert job_key(base) not in keys

    def test_default_config_hashes_like_explicit_default(self):
        explicit = SimulationJob(
            workload="gapbs.pr", predictor="lp", num_accesses=200,
            warmup_accesses=50, seed=0,
            config=SystemConfig.paper_single_core())
        assert job_key(SINGLE_JOB) == job_key(explicit)

    def test_name_spec_hashes_like_built_workload(self):
        built = SimulationJob(workload=build_workload("gapbs.pr"),
                              predictor="lp", num_accesses=200,
                              warmup_accesses=50, seed=0)
        assert job_key(SINGLE_JOB) == job_key(built)

    def test_mix_spec_captures_composition(self):
        spec = job_spec(MIX_JOB)
        names = [app["state"]["name"] for app in spec["applications"]]
        assert names == ["gapbs.bfs", "619.lbm", "nas.lu", "bmt"]
        assert spec["multithreaded"] is False
        # Per-core entries carry full generator state, so retuning a
        # registry application invalidates the mixes containing it.
        assert all(set(app) == {"__workload__", "state"}
                   for app in spec["applications"])

    def test_uncacheable_workload_is_rejected_not_mishashed(self):
        class AdHoc(Workload):
            def __init__(self):
                super().__init__("ad-hoc")
                self.generator = lambda: None  # not fingerprintable

            def _accesses(self, rng, base_address, thread_id):
                raise NotImplementedError

        job = SimulationJob(workload=AdHoc(), predictor="lp",
                            num_accesses=10)
        with pytest.raises(UncacheableJobError):
            job_key(job)
        assert try_job_key(job) is None


# ======================================================================
# Result serialization
# ======================================================================
class TestRoundTrip:
    def test_single_core_result_roundtrips_exactly(self):
        result = SimulationEngine(jobs=1, store=False).run([SINGLE_JOB])[0]
        encoded = json.loads(json.dumps(serialize_result(result)))
        assert deserialize_result(encoded) == result

    def test_mix_result_roundtrips_exactly(self):
        result = SimulationEngine(jobs=1, store=False).run([MIX_JOB])[0]
        encoded = json.loads(json.dumps(serialize_result(result)))
        assert deserialize_result(encoded) == result


# ======================================================================
# Store persistence and engine read-through
# ======================================================================
class TestResultStore:
    def test_store_round_trip_across_instances(self, tmp_path):
        result = SimulationEngine(jobs=1, store=False).run([SINGLE_JOB])[0]
        store = ResultStore(tmp_path)
        key = job_key(SINGLE_JOB)
        store.put(key, job_spec(SINGLE_JOB), result)
        assert key in store

        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.get(key) == result
        assert reloaded.hits == 1 and reloaded.misses == 0

    def test_engine_serves_second_run_entirely_from_store(self, tmp_path):
        jobs = small_grid()
        store = ResultStore(tmp_path)
        first = SimulationEngine(jobs=1, store=store).run(jobs)
        assert store.misses == len(jobs) and store.hits == 0

        store = ResultStore(tmp_path)
        second = SimulationEngine(jobs=1, store=store).run(jobs)
        assert store.hits == len(jobs) and store.misses == 0
        assert second == first

    def test_interrupted_grid_keeps_completed_jobs(self, tmp_path):
        """Results are persisted as they finish, not after the whole grid."""
        jobs = small_grid()[:2] + [
            SimulationJob(workload="gapbs.pr", predictor="bogus",
                          num_accesses=50)]
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="unknown predictor"):
            SimulationEngine(jobs=1, store=store).run(jobs)
        assert len(ResultStore(tmp_path)) == 2

        store = ResultStore(tmp_path)
        SimulationEngine(jobs=1, store=store).run(small_grid())
        assert store.hits == 2

    def test_store_true_opts_into_environment_default(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        engine = SimulationEngine(jobs=1, store=True)
        assert engine.store is not None
        monkeypatch.delenv("REPRO_STORE")
        assert SimulationEngine(jobs=1, store=True).store is None

    def test_partial_grid_resumes_from_stored_jobs(self, tmp_path):
        jobs = small_grid()
        store = ResultStore(tmp_path)
        SimulationEngine(jobs=1, store=store).run(jobs[:2])

        store = ResultStore(tmp_path)
        results = SimulationEngine(jobs=1, store=store).run(jobs)
        assert store.hits == 2 and store.misses == len(jobs) - 2
        assert results == SimulationEngine(jobs=1, store=False).run(jobs)

    def test_force_recomputes_and_refreshes_entries(self, tmp_path):
        jobs = small_grid()
        store = ResultStore(tmp_path)
        first = SimulationEngine(jobs=1, store=store).run(jobs)

        store = ResultStore(tmp_path)
        forced = SimulationEngine(jobs=1, store=store).run(jobs, force=True)
        assert store.hits == 0 and store.misses == len(jobs)
        assert forced == first
        # Forced entries are appended; newest wins on reload.
        assert len(ResultStore(tmp_path)) == len(jobs)
        lines = (tmp_path / "store.jsonl").read_text().splitlines()
        assert len(lines) == 2 * len(jobs)

    def test_uncacheable_jobs_bypass_the_store(self, tmp_path):
        workload = build_workload("gups")
        workload.marker = lambda: None  # make it unfingerprintable
        job = SimulationJob(workload=workload, predictor="lp",
                            num_accesses=100)
        store = ResultStore(tmp_path)
        results = SimulationEngine(jobs=1, store=store).run([job])
        assert results[0].workload == "gups"
        assert len(store) == 0

    def test_store_file_is_deterministic_across_runs(self, tmp_path):
        jobs = small_grid()
        SimulationEngine(jobs=1, store=tmp_path / "a").run(jobs)
        SimulationEngine(jobs=1, store=tmp_path / "b").run(jobs)
        assert (tmp_path / "a" / "store.jsonl").read_bytes() == \
            (tmp_path / "b" / "store.jsonl").read_bytes()

    def test_partial_trailing_line_is_tolerated_then_repaired(
            self, tmp_path, capsys):
        """A run killed mid-append must not brick the store."""
        result = SimulationEngine(jobs=1, store=False).run([SINGLE_JOB])[0]
        store = ResultStore(tmp_path)
        store.put(job_key(SINGLE_JOB), job_spec(SINGLE_JOB), result)
        with store.path.open("a") as handle:
            handle.write('{"key": "trunc')  # interrupted append

        recovered = ResultStore(tmp_path)
        assert len(recovered) == 1
        assert recovered.get(job_key(SINGLE_JOB)) == result
        assert "partial trailing line" in capsys.readouterr().err
        # Loading is strictly read-only: the torn tail is still on disk.
        assert recovered.path.read_text().endswith('{"key": "trunc')

        # The next write repairs the tail before appending.
        recovered.put("other-key", {"spec": 0}, result)
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 2
        assert capsys.readouterr().err == ""

    def test_default_store_is_memoized_per_path(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "memo"))
        first = SimulationEngine(jobs=1).store
        second = SimulationEngine(jobs=1).store
        assert first is second and first is not None

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('not json\n{"key": "abc", "result": {}}\n')
        with pytest.raises(ValueError, match="corrupt store line"):
            ResultStore(tmp_path)

    def test_clear_removes_persisted_results(self, tmp_path):
        store = ResultStore(tmp_path)
        SimulationEngine(jobs=1, store=store).run([SINGLE_JOB])
        assert store.path.is_file()
        store.clear()
        assert not store.path.is_file()
        assert len(ResultStore(tmp_path)) == 0

    def test_env_default_store_wires_drivers_through(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        engine = SimulationEngine(jobs=1)
        assert engine.store is not None
        engine.run([SINGLE_JOB])
        assert (tmp_path / "env-store" / "store.jsonl").is_file()

        monkeypatch.setenv("REPRO_STORE", "")
        assert SimulationEngine(jobs=1).store is None
