"""Tests for the content-addressed results store (`repro.sim.store`).

Covers the properties the CI determinism job relies on: job keys stable
across processes, exact result round-trips, resume after a partially
persisted grid, and the engine's read-through/force semantics — plus the
sharded layout: key->shard routing, locked torn-tail repair that never
clobbers concurrent appends, legacy-store migration, the on-disk index,
fsck salvage and compaction idempotence.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim.config import SystemConfig
from repro.sim.engine import MixJob, SimulationEngine, SimulationJob
from repro.sim.store import (
    ResultStore,
    UncacheableJobError,
    deserialize_result,
    fsck_store,
    job_key,
    job_spec,
    serialize_result,
    shard_for_key,
    try_job_key,
)
from repro.workloads import build_workload
from repro.workloads.base import Workload

SINGLE_JOB = SimulationJob(workload="gapbs.pr", predictor="lp",
                           num_accesses=200, warmup_accesses=50, seed=0)
MIX_JOB = MixJob(mix="mix1", predictor="lp", accesses_per_core=120, seed=0)


def small_grid(num_accesses: int = 200) -> list:
    return [SimulationJob(workload=app, predictor=predictor,
                          num_accesses=num_accesses, warmup_accesses=50,
                          seed=0)
            for app in ("gapbs.pr", "gups")
            for predictor in ("baseline", "lp")]


@pytest.fixture(scope="module")
def tiny_result():
    """One real simulation result, shared by the store-layout tests."""
    job = SimulationJob(workload="gups", predictor="lp", num_accesses=60,
                        warmup_accesses=20)
    return SimulationEngine(jobs=1, store=False).run([job])[0]


def entry_line(key: str, result, spec=None) -> bytes:
    """One store line exactly as ``ResultStore.put`` would write it."""
    payload = json.dumps(
        {"key": key, "spec": spec or {}, "result": serialize_result(result)},
        sort_keys=True, separators=(",", ":"))
    return payload.encode("utf-8") + b"\n"


def hexkey(prefix: str, tag: str = "0") -> str:
    """A syntactically valid 64-hex key routed to shard ``prefix``."""
    body = tag.encode("utf-8").hex()
    return (prefix + body + "0" * 64)[:64]


def shard_bytes(root: Path) -> dict:
    """{shard filename: bytes} for every shard file under ``root``."""
    shards = Path(root) / "shards"
    if not shards.is_dir():
        return {}
    return {path.name: path.read_bytes()
            for path in sorted(shards.glob("*.jsonl"))}


# ======================================================================
# Job keys
# ======================================================================
class TestJobKeys:
    def test_key_is_deterministic_within_process(self):
        assert job_key(SINGLE_JOB) == job_key(SINGLE_JOB)
        assert job_key(MIX_JOB) == job_key(MIX_JOB)

    def test_key_is_stable_across_processes(self):
        """A fresh interpreter computes the same key (no hash()/id() use)."""
        script = (
            "from repro.sim.engine import SimulationJob, MixJob\n"
            "from repro.sim.store import job_key\n"
            "print(job_key(SimulationJob(workload='gapbs.pr',"
            " predictor='lp', num_accesses=200, warmup_accesses=50,"
            " seed=0)))\n"
            "print(job_key(MixJob(mix='mix1', predictor='lp',"
            " accesses_per_core=120, seed=0)))\n"
        )
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        output = subprocess.run(
            [sys.executable, "-c", script], check=True, text=True,
            capture_output=True, env=env,
        ).stdout.split()
        assert output == [job_key(SINGLE_JOB), job_key(MIX_JOB)]

    def test_key_distinguishes_every_spec_dimension(self):
        base = SINGLE_JOB
        variants = [
            SimulationJob(workload="gups", predictor="lp", num_accesses=200,
                          warmup_accesses=50, seed=0),
            SimulationJob(workload="gapbs.pr", predictor="d2d",
                          num_accesses=200, warmup_accesses=50, seed=0),
            SimulationJob(workload="gapbs.pr", predictor="lp",
                          num_accesses=300, warmup_accesses=50, seed=0),
            SimulationJob(workload="gapbs.pr", predictor="lp",
                          num_accesses=200, warmup_accesses=60, seed=0),
            SimulationJob(workload="gapbs.pr", predictor="lp",
                          num_accesses=200, warmup_accesses=50, seed=7),
            SimulationJob(workload="gapbs.pr", predictor="lp",
                          num_accesses=200, warmup_accesses=50, seed=0,
                          config=SystemConfig.paper_multi_core()),
        ]
        keys = {job_key(job) for job in variants}
        assert len(keys) == len(variants)
        assert job_key(base) not in keys

    def test_default_config_hashes_like_explicit_default(self):
        explicit = SimulationJob(
            workload="gapbs.pr", predictor="lp", num_accesses=200,
            warmup_accesses=50, seed=0,
            config=SystemConfig.paper_single_core())
        assert job_key(SINGLE_JOB) == job_key(explicit)

    def test_name_spec_hashes_like_built_workload(self):
        built = SimulationJob(workload=build_workload("gapbs.pr"),
                              predictor="lp", num_accesses=200,
                              warmup_accesses=50, seed=0)
        assert job_key(SINGLE_JOB) == job_key(built)

    def test_mix_spec_captures_composition(self):
        spec = job_spec(MIX_JOB)
        names = [app["state"]["name"] for app in spec["applications"]]
        assert names == ["gapbs.bfs", "619.lbm", "nas.lu", "bmt"]
        assert spec["multithreaded"] is False
        # Per-core entries carry full generator state, so retuning a
        # registry application invalidates the mixes containing it.
        assert all(set(app) == {"__workload__", "state"}
                   for app in spec["applications"])

    def test_uncacheable_workload_is_rejected_not_mishashed(self):
        class AdHoc(Workload):
            def __init__(self):
                super().__init__("ad-hoc")
                self.generator = lambda: None  # not fingerprintable

            def _accesses(self, rng, base_address, thread_id):
                raise NotImplementedError

        job = SimulationJob(workload=AdHoc(), predictor="lp",
                            num_accesses=10)
        with pytest.raises(UncacheableJobError):
            job_key(job)
        assert try_job_key(job) is None


# ======================================================================
# Result serialization
# ======================================================================
class TestRoundTrip:
    def test_single_core_result_roundtrips_exactly(self):
        result = SimulationEngine(jobs=1, store=False).run([SINGLE_JOB])[0]
        encoded = json.loads(json.dumps(serialize_result(result)))
        assert deserialize_result(encoded) == result

    def test_mix_result_roundtrips_exactly(self):
        result = SimulationEngine(jobs=1, store=False).run([MIX_JOB])[0]
        encoded = json.loads(json.dumps(serialize_result(result)))
        assert deserialize_result(encoded) == result


# ======================================================================
# Store persistence and engine read-through
# ======================================================================
class TestResultStore:
    def test_store_round_trip_across_instances(self, tmp_path):
        result = SimulationEngine(jobs=1, store=False).run([SINGLE_JOB])[0]
        store = ResultStore(tmp_path)
        key = job_key(SINGLE_JOB)
        store.put(key, job_spec(SINGLE_JOB), result)
        assert key in store

        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.get(key) == result
        assert reloaded.hits == 1 and reloaded.misses == 0

    def test_engine_serves_second_run_entirely_from_store(self, tmp_path):
        jobs = small_grid()
        store = ResultStore(tmp_path)
        first = SimulationEngine(jobs=1, store=store).run(jobs)
        assert store.misses == len(jobs) and store.hits == 0

        store = ResultStore(tmp_path)
        second = SimulationEngine(jobs=1, store=store).run(jobs)
        assert store.hits == len(jobs) and store.misses == 0
        assert second == first

    def test_interrupted_grid_keeps_completed_jobs(self, tmp_path):
        """Results are persisted as they finish, not after the whole grid."""
        jobs = small_grid()[:2] + [
            SimulationJob(workload="gapbs.pr", predictor="bogus",
                          num_accesses=50)]
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="unknown predictor"):
            SimulationEngine(jobs=1, store=store).run(jobs)
        assert len(ResultStore(tmp_path)) == 2

        store = ResultStore(tmp_path)
        SimulationEngine(jobs=1, store=store).run(small_grid())
        assert store.hits == 2

    def test_store_true_opts_into_environment_default(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        engine = SimulationEngine(jobs=1, store=True)
        assert engine.store is not None
        monkeypatch.delenv("REPRO_STORE")
        assert SimulationEngine(jobs=1, store=True).store is None

    def test_partial_grid_resumes_from_stored_jobs(self, tmp_path):
        jobs = small_grid()
        store = ResultStore(tmp_path)
        SimulationEngine(jobs=1, store=store).run(jobs[:2])

        store = ResultStore(tmp_path)
        results = SimulationEngine(jobs=1, store=store).run(jobs)
        assert store.hits == 2 and store.misses == len(jobs) - 2
        assert results == SimulationEngine(jobs=1, store=False).run(jobs)

    def test_force_recomputes_and_refreshes_entries(self, tmp_path):
        jobs = small_grid()
        store = ResultStore(tmp_path)
        first = SimulationEngine(jobs=1, store=store).run(jobs)

        store = ResultStore(tmp_path)
        forced = SimulationEngine(jobs=1, store=store).run(jobs, force=True)
        assert store.hits == 0 and store.misses == len(jobs)
        assert forced == first
        # Forced entries are appended; newest wins on reload.
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == len(jobs)
        assert reloaded.total_lines() == 2 * len(jobs)
        total = sum(data.count(b"\n") for data in shard_bytes(tmp_path).values())
        assert total == 2 * len(jobs)

    def test_uncacheable_jobs_bypass_the_store(self, tmp_path):
        workload = build_workload("gups")
        workload.marker = lambda: None  # make it unfingerprintable
        job = SimulationJob(workload=workload, predictor="lp",
                            num_accesses=100)
        store = ResultStore(tmp_path)
        results = SimulationEngine(jobs=1, store=store).run([job])
        assert results[0].workload == "gups"
        assert len(store) == 0
        # Unkeyed lookups must not skew the hit/miss counters.
        assert store.misses == 0 and store.hits == 0
        assert store.unkeyed == 1

    def test_store_file_is_deterministic_across_runs(self, tmp_path):
        jobs = small_grid()
        SimulationEngine(jobs=1, store=tmp_path / "a").run(jobs)
        SimulationEngine(jobs=1, store=tmp_path / "b").run(jobs)
        first = shard_bytes(tmp_path / "a")
        assert first and first == shard_bytes(tmp_path / "b")

    def test_parallel_engine_produces_identical_shards(self, tmp_path):
        """Entries are persisted in job order: every shard byte-matches."""
        jobs = small_grid()
        SimulationEngine(jobs=1, store=tmp_path / "serial").run(jobs)
        SimulationEngine(jobs=2, store=tmp_path / "parallel").run(jobs)
        serial = shard_bytes(tmp_path / "serial")
        assert serial and serial == shard_bytes(tmp_path / "parallel")

    def test_partial_trailing_line_is_tolerated_then_repaired(
            self, tmp_path, capsys, tiny_result):
        """A run killed mid-append must not brick the store."""
        store = ResultStore(tmp_path)
        store.put(job_key(SINGLE_JOB), job_spec(SINGLE_JOB), tiny_result)
        shard = store.shards_dir / \
            f"{shard_for_key(job_key(SINGLE_JOB))}.jsonl"
        with shard.open("ab") as handle:
            handle.write(b'{"key": "trunc')  # interrupted append

        recovered = ResultStore(tmp_path)
        assert len(recovered) == 1
        assert recovered.get(job_key(SINGLE_JOB)) == tiny_result
        assert "torn trailing line" in capsys.readouterr().err
        # Loading is strictly read-only: the torn tail is still on disk.
        assert shard.read_bytes().endswith(b'{"key": "trunc')

        # The next append to that shard truncates the torn tail in place.
        torn_key = hexkey(shard_for_key(job_key(SINGLE_JOB)), "other")
        recovered.put(torn_key, {"spec": 0}, tiny_result)
        assert b'"trunc' not in shard.read_bytes()
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 2
        assert capsys.readouterr().err == ""

    def test_repair_never_clobbers_a_concurrent_append(
            self, tmp_path, capsys, tiny_result):
        """Regression: repair must only truncate the torn tail it sees.

        The old single-file store recorded a "good prefix" at load time and
        rewrote the whole file with it on the next put — dropping entries
        other processes appended in between.  Now repair happens under the
        lock, in place, and only on an actually-torn tail.
        """
        prefix = "aa"
        first, second, third = (hexkey(prefix, tag) for tag in "123")
        writer_a = ResultStore(tmp_path)
        writer_a.put(first, {}, tiny_result)
        shard = writer_a.shards_dir / f"{prefix}.jsonl"
        with shard.open("ab") as handle:
            handle.write(b'{"key": "torn')

        # Writer B opens while the tail is torn...
        writer_b = ResultStore(tmp_path)
        assert "torn trailing line" in capsys.readouterr().err
        # ...then another process repairs the shard and appends an entry...
        writer_c = ResultStore(tmp_path)
        writer_c.put(second, {}, tiny_result)
        # ...and writer B's own put must not clobber that fresh entry.
        writer_b.put(third, {}, tiny_result)

        reloaded = ResultStore(tmp_path)
        assert sorted(reloaded.keys()) == sorted([first, second, third])
        assert all(reloaded.get(key) == tiny_result
                   for key in (first, second, third))

    def test_default_store_is_memoized_per_path(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "memo"))
        first = SimulationEngine(jobs=1).store
        second = SimulationEngine(jobs=1).store
        assert first is second and first is not None

    def test_corrupt_interior_line_raises(self, tmp_path, tiny_result):
        shards = tmp_path / "shards"
        shards.mkdir(parents=True)
        (shards / "aa.jsonl").write_bytes(
            b"not json\n" + entry_line(hexkey("aa"), tiny_result))
        with pytest.raises(ValueError, match=r"aa\.jsonl:1: corrupt"):
            ResultStore(tmp_path)

    def test_wrong_shape_line_raises_contextual_error(self, tmp_path,
                                                      tiny_result):
        """Valid JSON without the entry shape must not escape as KeyError.

        The message names path:line and points at `repro store fsck`.
        """
        shards = tmp_path / "shards"
        shards.mkdir(parents=True)
        (shards / "aa.jsonl").write_bytes(
            entry_line(hexkey("aa"), tiny_result)
            + b'{"not": "an entry"}\n'
            + entry_line(hexkey("aa", "2"), tiny_result))
        with pytest.raises(ValueError, match=r"aa\.jsonl:2: .*fsck"):
            ResultStore(tmp_path)

    def test_corrupt_legacy_store_raises_with_fsck_hint(self, tmp_path):
        (tmp_path / "store.jsonl").write_text(
            'not json\n{"key": "abc", "result": {}}\n')
        with pytest.raises(ValueError, match="corrupt store line"):
            ResultStore(tmp_path)

    def test_clear_removes_persisted_results(self, tmp_path):
        store = ResultStore(tmp_path)
        SimulationEngine(jobs=1, store=store).run([SINGLE_JOB])
        assert store.shards_dir.is_dir()
        store.clear()
        assert not store.shards_dir.exists()
        assert len(ResultStore(tmp_path)) == 0

    def test_env_default_store_wires_drivers_through(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        engine = SimulationEngine(jobs=1)
        assert engine.store is not None
        engine.run([SINGLE_JOB])
        assert shard_bytes(tmp_path / "env-store")

        monkeypatch.setenv("REPRO_STORE", "")
        assert SimulationEngine(jobs=1).store is None


# ======================================================================
# Shard routing
# ======================================================================
class TestSharding:
    def test_entries_land_in_their_key_shard(self, tmp_path, tiny_result):
        store = ResultStore(tmp_path)
        for prefix in ("00", "a7", "ff"):
            store.put(hexkey(prefix), {}, tiny_result)
        names = set(shard_bytes(tmp_path))
        assert names == {"00.jsonl", "a7.jsonl", "ff.jsonl"}

    def test_job_keys_spread_across_shards(self, tmp_path):
        store = ResultStore(tmp_path)
        SimulationEngine(jobs=1, store=store).run(small_grid())
        for key in store.keys():
            prefix, _, _ = store._entries[key]
            assert prefix == key[:2]

    def test_shard_routing_is_stable_across_processes(self):
        keys = [job_key(SINGLE_JOB), job_key(MIX_JOB), "not-hex!", "ab"]
        script = (
            "from repro.sim.store import shard_for_key\n"
            "import sys\n"
            "for key in sys.argv[1:]:\n"
            "    print(shard_for_key(key))\n"
        )
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        output = subprocess.run(
            [sys.executable, "-c", script, *keys], check=True, text=True,
            capture_output=True, env=env,
        ).stdout.split()
        assert output == [shard_for_key(key) for key in keys]

    def test_non_hex_keys_are_rehashed_deterministically(self):
        assert shard_for_key("zz-not-hex") == shard_for_key("zz-not-hex")
        assert len(shard_for_key("x")) == 2
        assert set(shard_for_key("x")) <= set("0123456789abcdef")
        # Hex keys route by their own leading bytes.
        assert shard_for_key("ABCD" + "0" * 60) == "ab"


# ======================================================================
# Legacy single-file migration
# ======================================================================
class TestLegacyMigration:
    def legacy_store(self, tmp_path, result, keys) -> Path:
        path = tmp_path / "store.jsonl"
        path.write_bytes(b"".join(entry_line(key, result) for key in keys))
        return path

    def test_open_migrates_legacy_store_losslessly(self, tmp_path, capsys,
                                                   tiny_result):
        keys = [hexkey("aa"), hexkey("bb"), hexkey("aa", "2")]
        legacy = self.legacy_store(tmp_path, tiny_result, keys)
        store = ResultStore(tmp_path)
        assert store.migrated_entries == 3
        assert sorted(store.keys()) == sorted(set(keys))
        assert all(store.get(key) == tiny_result for key in keys)
        assert not legacy.exists()
        assert (tmp_path / "store.jsonl.migrated").is_file()
        assert set(shard_bytes(tmp_path)) == {"aa.jsonl", "bb.jsonl"}
        assert "migrated 3 legacy entries" in capsys.readouterr().err

    def test_migration_happens_once(self, tmp_path, tiny_result):
        self.legacy_store(tmp_path, tiny_result, [hexkey("aa")])
        assert ResultStore(tmp_path).migrated_entries == 1
        reopened = ResultStore(tmp_path)
        assert reopened.migrated_entries == 0
        assert len(reopened) == 1

    def test_unwritable_store_serves_legacy_entries_in_place(
            self, tmp_path, capsys, monkeypatch, tiny_result):
        """Read-only media: status/--check must read a legacy store as-is.

        Simulates EROFS by making the locked append fail; the store must
        fall back to serving the legacy file read-only instead of raising,
        and must leave the file untouched.
        """
        import repro.sim.store as store_module

        keys = [hexkey("aa"), hexkey("bb")]
        legacy = self.legacy_store(tmp_path, tiny_result, keys)
        before = legacy.read_bytes()

        def refuse(path, payload):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr(store_module, "_append_payload", refuse)
        store = ResultStore(tmp_path)
        assert "serving its entries read-only" in capsys.readouterr().err
        assert store.migrated_entries == 0
        assert sorted(store.keys()) == sorted(keys)
        assert all(store.get(key) == tiny_result for key in keys)
        assert legacy.read_bytes() == before

    def test_stale_legacy_entry_never_supersedes_a_shard_entry(
            self, tmp_path, capsys, tiny_result):
        """Shard entries postdate the legacy layout, so they must win.

        Both migration paths (auto-migrate on open and fsck) append to
        shards, where the newest line wins on reload — a stale legacy
        line for a key the shards already hold must therefore be skipped,
        not appended after the newer entry.
        """
        stale_job = SimulationJob(workload="gups", predictor="baseline",
                                  num_accesses=60, warmup_accesses=20)
        stale = SimulationEngine(jobs=1, store=False).run([stale_job])[0]
        assert stale != tiny_result
        key = hexkey("aa")

        for label, migrate in (("open", lambda root: ResultStore(root)),
                               ("fsck", lambda root: fsck_store(root))):
            root = tmp_path / label
            shards = root / "shards"
            shards.mkdir(parents=True)
            (shards / "aa.jsonl").write_bytes(entry_line(key, tiny_result))
            (root / "store.jsonl").write_bytes(entry_line(key, stale))
            migrate(root)
            capsys.readouterr()
            store = ResultStore(root)
            assert not (root / "store.jsonl").exists()
            assert store.get(key) == tiny_result  # the newer entry won
            assert store.total_lines() == 1

    def test_interrupted_migration_resumes_without_duplicates(
            self, tmp_path, capsys, monkeypatch, tiny_result):
        """A migration killed mid-way (ENOSPC) must resume losslessly.

        The failed attempt leaves some lines already appended to shards
        and the legacy file in place; the next open completes the
        migration without duplicating what already landed.
        """
        import repro.sim.store as store_module

        keys = [hexkey("aa"), hexkey("bb")]
        self.legacy_store(tmp_path, tiny_result, keys)
        real_append = store_module._append_payload
        calls = {"count": 0}

        def flaky(path, payload):
            calls["count"] += 1
            if calls["count"] > 1:
                raise OSError(28, "No space left on device")
            return real_append(path, payload)

        monkeypatch.setattr(store_module, "_append_payload", flaky)
        partial = ResultStore(tmp_path)  # one shard lands, then the error
        assert "cannot migrate" in capsys.readouterr().err
        # Still fully readable: shard entries plus the legacy remainder.
        assert sorted(partial.keys()) == sorted(keys)
        assert all(partial.get(key) == tiny_result for key in keys)

        monkeypatch.setattr(store_module, "_append_payload", real_append)
        resumed = ResultStore(tmp_path)
        assert resumed.migrated_entries == len(keys)
        assert not (tmp_path / "store.jsonl").exists()
        assert sorted(resumed.keys()) == sorted(keys)
        # No duplicates: exactly one persisted line per key.
        assert resumed.total_lines() == len(keys)

    def test_torn_legacy_tail_is_dropped_with_warning(self, tmp_path,
                                                      capsys, tiny_result):
        legacy = self.legacy_store(tmp_path, tiny_result, [hexkey("aa")])
        with legacy.open("ab") as handle:
            handle.write(b'{"key": "torn')
        store = ResultStore(tmp_path)
        assert store.migrated_entries == 1
        assert "torn trailing line" in capsys.readouterr().err


# ======================================================================
# The on-disk index
# ======================================================================
class TestIndex:
    def test_fresh_index_skips_rescanning_unchanged_shards(
            self, tmp_path, tiny_result):
        store = ResultStore(tmp_path)
        key = hexkey("aa")
        store.put(key, {}, tiny_result)
        store.flush_index()
        shard = store.shards_dir / "aa.jsonl"
        # Same size, garbage content: an open that trusted the index will
        # not notice — proving the shard was not re-parsed.
        shard.write_bytes(b"X" * shard.stat().st_size)
        trusted = ResultStore(tmp_path)
        assert len(trusted) == 1 and key in trusted

    def test_stale_index_rescans_only_the_grown_tail(self, tmp_path,
                                                     tiny_result):
        first = ResultStore(tmp_path)
        first.put(hexkey("aa", "1"), {}, tiny_result)
        first.flush_index()
        # A second writer appends without refreshing the on-disk index.
        second = ResultStore(tmp_path)
        second.put(hexkey("aa", "2"), {}, tiny_result)
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 2
        assert all(reloaded.get(hexkey("aa", tag)) == tiny_result
                   for tag in "12")

    def test_flush_index_never_hides_a_concurrent_writers_entries(
            self, tmp_path, tiny_result):
        """Regression: an index must not cover bytes it has no entries for.

        Writer B appends to a shard after writer A opened the store; A then
        appends to the same shard and flushes the index.  A's view of that
        shard has a hole, so the flushed index must leave the shard out
        (forcing a rescan) rather than record a size that hides B's entry.
        """
        writer_a = ResultStore(tmp_path)
        writer_b = ResultStore(tmp_path)
        hidden, own = hexkey("aa", "B"), hexkey("aa", "A")
        writer_b.put(hidden, {}, tiny_result)
        writer_a.put(own, {}, tiny_result)
        writer_a.flush_index()

        reloaded = ResultStore(tmp_path)
        assert sorted(reloaded.keys()) == sorted([hidden, own])
        assert reloaded.get(hidden) == tiny_result
        assert reloaded.get(own) == tiny_result

    def test_runs_refresh_the_index_automatically(self, tmp_path):
        SimulationEngine(jobs=1, store=tmp_path).run(small_grid())
        # Engine puts do not flush per-append; the next open rescans the
        # changed shards and persists a fresh index best-effort.
        ResultStore(tmp_path)
        index = json.loads((tmp_path / "shards" / "index.json").read_text())
        assert index["schema"] == "repro-store-index/1"
        counted = sum(len(meta["entries"])
                      for meta in index["shards"].values())
        assert counted == len(small_grid())


# ======================================================================
# fsck and compaction
# ======================================================================
class TestFsck:
    def test_fsck_salvages_every_damage_class(self, tmp_path, tiny_result):
        shards = tmp_path / "shards"
        shards.mkdir(parents=True)
        good, misplaced = hexkey("aa"), hexkey("bb")
        (shards / "aa.jsonl").write_bytes(
            entry_line(good, tiny_result)
            + b"garbage not json\n"
            + b'{"valid": "json", "wrong": "shape"}\n'
            + entry_line(misplaced, tiny_result)
            + b'{"key": "torn-partial')
        report = fsck_store(tmp_path)
        assert report["kept"] == 1
        assert report["moved"] == 1
        assert report["corrupt"] == 1
        assert report["foreign"] == 1
        assert report["torn"] == 1
        store = ResultStore(tmp_path)
        assert sorted(store.keys()) == sorted([good, misplaced])
        assert store.get(good) == tiny_result
        assert store.get(misplaced) == tiny_result
        assert set(shard_bytes(tmp_path)) == {"aa.jsonl", "bb.jsonl"}

    def test_fsck_keeps_readable_unterminated_tail(self, tmp_path,
                                                   tiny_result):
        """A crash can drop just the newline: the entry is still salvaged."""
        shards = tmp_path / "shards"
        shards.mkdir(parents=True)
        key = hexkey("aa")
        (shards / "aa.jsonl").write_bytes(
            entry_line(key, tiny_result).rstrip(b"\n"))
        report = fsck_store(tmp_path)
        assert report["kept"] == 1 and report["torn"] == 0
        assert ResultStore(tmp_path).get(key) == tiny_result

    def test_fsck_migrates_and_salvages_a_corrupt_legacy_store(
            self, tmp_path, tiny_result):
        key = hexkey("cc")
        (tmp_path / "store.jsonl").write_bytes(
            b"not json at all\n" + entry_line(key, tiny_result))
        # Too corrupt for a normal open...
        with pytest.raises(ValueError, match="corrupt store line"):
            ResultStore(tmp_path)
        # ...but fsck salvages the good entry and migrates it.
        report = fsck_store(tmp_path)
        assert report["migrated"] == 1 and report["corrupt"] == 1
        assert ResultStore(tmp_path).get(key) == tiny_result

    def test_fsck_leaves_clean_shards_byte_identical(self, tmp_path):
        SimulationEngine(jobs=1, store=tmp_path).run(small_grid())
        before = shard_bytes(tmp_path)
        report = fsck_store(tmp_path)
        assert report["rewritten_shards"] == 0
        assert shard_bytes(tmp_path) == before

    def test_instance_fsck_reloads_the_view(self, tmp_path, tiny_result):
        store = ResultStore(tmp_path)
        store.put(hexkey("aa"), {}, tiny_result)
        shard = store.shards_dir / "aa.jsonl"
        with shard.open("ab") as handle:
            handle.write(b"junk line\n")
        report = store.fsck()
        assert report["corrupt"] == 1
        assert len(store) == 1
        assert store.get(hexkey("aa")) == tiny_result


class TestStoreLock:
    def test_lock_waiter_retries_after_the_file_is_unlinked(self, tmp_path):
        """A waiter must never hold an orphaned lock inode (clear() race).

        While one holder has the lock, clear() unlinks the lock file as
        its last locked step; a waiter that then wins flock on the dead
        inode must detect the unlink and retry on the live file, or two
        writers end up in 'exclusive' sections on different inodes.
        """
        import threading
        import time

        from repro.sim.store import _store_lock

        lock = tmp_path / ".lock"
        live_inode = []

        def clearer():
            with _store_lock(lock):
                time.sleep(0.2)
                os.unlink(lock)  # what clear() does, last, under the lock

        def writer():
            time.sleep(0.05)  # let the clearer take the lock first
            with _store_lock(lock):
                live_inode.append(os.stat(lock).st_ino)

        threads = [threading.Thread(target=clearer),
                   threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert live_inode  # the writer held a lock on the live inode


class TestCompaction:
    def test_compact_on_a_corrupt_shard_keeps_the_view_intact(
            self, tmp_path, tiny_result):
        """A failed compaction must not empty the live instance's index."""
        store = ResultStore(tmp_path)
        good = hexkey("aa")
        store.put(good, {}, tiny_result)
        # Another writer corrupts a different shard behind our back.
        (store.shards_dir / "bb.jsonl").write_bytes(b"terminated junk\n")
        with pytest.raises(ValueError, match="corrupt store line"):
            store.compact()
        assert good in store
        assert store.get(good) == tiny_result
    def test_compact_keeps_newest_entry_and_is_idempotent(self, tmp_path):
        jobs = small_grid()
        store = ResultStore(tmp_path)
        engine = SimulationEngine(jobs=1, store=store)
        first = engine.run(jobs)
        engine.run(jobs, force=True)
        assert store.total_lines() == 2 * len(jobs)

        report = store.compact()
        assert report["entries"] == len(jobs)
        assert report["removed_lines"] == len(jobs)
        after = shard_bytes(tmp_path)
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == len(jobs)
        assert SimulationEngine(jobs=1, store=reloaded).run(jobs) == first
        assert reloaded.hits == len(jobs)

        again = ResultStore(tmp_path).compact()
        assert again["removed_lines"] == 0
        assert again["rewritten_shards"] == 0
        assert shard_bytes(tmp_path) == after
