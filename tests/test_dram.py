"""Unit tests for the DDR4-like DRAM timing model."""

from __future__ import annotations

import pytest

from repro.memory.dram import DRAMConfig, DRAMModel


class TestTiming:
    def test_idle_latency_larger_than_llc(self):
        dram = DRAMModel()
        # Main memory must be much slower than the 55-cycle LLC for the
        # level-prediction trade-offs of the paper to hold.
        assert dram.idle_latency() > 100

    def test_row_hit_faster_than_row_miss(self):
        dram = DRAMModel()
        first = dram.access(0x0)          # row miss (activate)
        second = dram.access(0x40)        # same row: row hit
        assert second < first
        assert dram.stats.row_hits == 1
        assert dram.stats.row_misses == 1

    def test_row_conflict_slowest(self):
        config = DRAMConfig()
        dram = DRAMModel(config)
        dram.access(0x0)
        conflict_addr = config.row_size_bytes * config.num_banks  # same bank, new row
        bank0, row0 = dram.map_address(0x0)
        bank1, row1 = dram.map_address(conflict_addr)
        assert bank0 == bank1 and row0 != row1
        latency = dram.access(conflict_addr)
        assert dram.stats.row_conflicts == 1
        assert latency >= dram.idle_latency()

    def test_core_cycle_conversion(self):
        config = DRAMConfig(core_frequency_ghz=4.0, dram_frequency_mhz=1200.0)
        assert config.core_cycles_per_dram_cycle == pytest.approx(10.0 / 3.0)


class TestAddressMapping:
    def test_distinct_rows_map_to_different_banks(self):
        dram = DRAMModel()
        banks = {dram.map_address(i * dram.config.row_size_bytes)[0]
                 for i in range(dram.config.num_banks)}
        assert len(banks) == dram.config.num_banks

    def test_same_row_same_mapping(self):
        dram = DRAMModel()
        assert dram.map_address(0x100) == dram.map_address(0x180)


class TestStatistics:
    def test_read_write_counters(self):
        dram = DRAMModel()
        dram.access(0x0)
        dram.access(0x40, is_write=True)
        assert dram.stats.reads == 1
        assert dram.stats.writes == 1
        assert dram.stats.accesses == 2
        assert dram.stats.average_latency > 0

    def test_row_hit_ratio(self):
        dram = DRAMModel()
        dram.access(0x0)
        dram.access(0x40)
        dram.access(0x80)
        assert dram.stats.row_hit_ratio == pytest.approx(2.0 / 3.0)

    def test_reset(self):
        dram = DRAMModel()
        dram.access(0x0)
        dram.reset_statistics()
        assert dram.stats.accesses == 0
        assert dram.stats.total_latency_core_cycles == 0.0

    def test_queueing_delay_is_bounded(self):
        """Back-to-back same-bank accesses must not accumulate unbounded
        queueing delay (the functional front end has no backpressure)."""
        dram = DRAMModel()
        latencies = [dram.access(0x0 if i % 2 == 0 else 0x40)
                     for i in range(200)]
        assert max(latencies) <= 3 * dram.idle_latency()


class TestRowBufferTransitions:
    """Open-page policy edges: hit -> conflict -> hit sequences, per-bank
    row state, and the exact latency ordering of the three outcomes."""

    def test_conflict_reopens_the_new_row(self):
        config = DRAMConfig()
        dram = DRAMModel(config)
        stride = config.row_size_bytes * config.num_banks  # same bank
        dram.access(0x0)                 # miss: opens row 0
        dram.access(stride)              # conflict: opens row 1
        dram.access(stride + 0x40)       # same new row: hit
        assert dram.stats.row_misses == 1
        assert dram.stats.row_conflicts == 1
        assert dram.stats.row_hits == 1

    def test_hit_conflict_hit_round_trip(self):
        config = DRAMConfig()
        dram = DRAMModel(config)
        stride = config.row_size_bytes * config.num_banks
        sequence = [0x0, 0x80, stride, 0x0, 0x100]
        for address in sequence:
            dram.access(address)
        # miss, hit, conflict (row 1), conflict (back to row 0), hit
        assert dram.stats.row_misses == 1
        assert dram.stats.row_hits == 2
        assert dram.stats.row_conflicts == 2

    def test_banks_keep_independent_open_rows(self):
        config = DRAMConfig()
        dram = DRAMModel(config)
        bank1 = config.row_size_bytes                    # bank 1, row 0
        dram.access(0x0)                                 # bank 0 opens
        dram.access(bank1)                               # bank 1 opens
        conflict = config.row_size_bytes * config.num_banks
        dram.access(conflict)                            # bank 0 conflicts
        dram.access(bank1 + 0x40)                        # bank 1 still open
        assert dram.stats.row_conflicts == 1
        assert dram.stats.row_hits == 1

    def test_first_access_to_every_bank_is_a_miss(self):
        config = DRAMConfig()
        dram = DRAMModel(config)
        for bank in range(config.num_banks):
            dram.access(bank * config.row_size_bytes)
        assert dram.stats.row_misses == config.num_banks
        assert dram.stats.row_hits == 0
        assert dram.stats.row_conflicts == 0

    def test_latency_ordering_hit_miss_conflict(self):
        """tCL+burst < tRCD+tCL+burst < tRP+tRCD+tCL+burst, spaced far
        apart in time so queueing never contributes."""
        config = DRAMConfig()
        stride = config.row_size_bytes * config.num_banks
        dram = DRAMModel(config)
        gap = 100_000.0
        miss = dram.access(0x0, current_cycle=gap)
        hit = dram.access(0x40, current_cycle=2 * gap)
        conflict = dram.access(stride, current_cycle=3 * gap)
        assert hit < miss < conflict

    def test_writes_update_row_state_like_reads(self):
        dram = DRAMModel()
        dram.access(0x0, is_write=True)
        dram.access(0x40)
        assert dram.stats.row_misses == 1
        assert dram.stats.row_hits == 1
        assert dram.stats.writes == 1 and dram.stats.reads == 1

    def test_open_rows_survive_statistics_reset(self):
        """reset_statistics clears counters, not the row-buffer state —
        warm-up then measure must not re-pay activates."""
        dram = DRAMModel()
        dram.access(0x0)
        dram.reset_statistics()
        dram.access(0x40)
        assert dram.stats.row_hits == 1
        assert dram.stats.row_misses == 0


class TestClockAndQueueing:
    def test_spaced_requests_pay_no_queueing(self):
        dram = DRAMModel()
        first = dram.access(0x0, current_cycle=0.0)
        assert first == pytest.approx(dram.idle_latency())

    def test_back_to_back_same_bank_pays_queueing(self):
        dram = DRAMModel()
        dram.access(0x0, current_cycle=0.0)
        queued = dram.access(0x40, current_cycle=0.0)
        spaced = DRAMModel()
        spaced.access(0x0, current_cycle=0.0)
        free = spaced.access(0x40, current_cycle=1_000_000.0)
        assert queued > free

    def test_queue_delay_capped_by_max_queue_fraction(self):
        config = DRAMConfig(max_queue_fraction=0.0)
        dram = DRAMModel(config)
        dram.access(0x0, current_cycle=0.0)
        second = dram.access(0x40, current_cycle=0.0)
        # With the cap at zero, a busy bank adds no delay at all.
        reference = DRAMModel(config)
        reference.access(0x0, current_cycle=0.0)
        assert second == reference.access(0x40,
                                          current_cycle=1_000_000.0)

    def test_internal_clock_never_runs_backwards(self):
        dram = DRAMModel()
        dram.access(0x0, current_cycle=5_000.0)
        dram.access(0x40, current_cycle=1_000.0)   # stale timestamp
        assert dram._now >= 5_000.0

    def test_different_banks_never_queue_on_each_other(self):
        config = DRAMConfig()
        dram = DRAMModel(config)
        dram.access(0x0, current_cycle=0.0)
        other_bank = dram.access(config.row_size_bytes, current_cycle=0.0)
        assert other_bank == pytest.approx(dram.idle_latency())


class TestStatisticsEdges:
    def test_empty_model_reports_zero_ratios(self):
        dram = DRAMModel()
        assert dram.stats.accesses == 0
        assert dram.stats.row_hit_ratio == 0.0
        assert dram.stats.average_latency == 0.0

    def test_average_latency_is_total_over_accesses(self):
        dram = DRAMModel()
        total = sum(dram.access(i * 0x40) for i in range(4))
        assert dram.stats.average_latency == pytest.approx(total / 4)

    def test_rank_count_multiplies_the_bank_pool(self):
        config = DRAMConfig(num_ranks=2)
        dram = DRAMModel(config)
        banks = {dram.map_address(i * config.row_size_bytes)[0]
                 for i in range(config.num_banks * 2)}
        assert len(banks) == config.num_banks * 2
