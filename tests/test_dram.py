"""Unit tests for the DDR4-like DRAM timing model."""

from __future__ import annotations

import pytest

from repro.memory.dram import DRAMConfig, DRAMModel


class TestTiming:
    def test_idle_latency_larger_than_llc(self):
        dram = DRAMModel()
        # Main memory must be much slower than the 55-cycle LLC for the
        # level-prediction trade-offs of the paper to hold.
        assert dram.idle_latency() > 100

    def test_row_hit_faster_than_row_miss(self):
        dram = DRAMModel()
        first = dram.access(0x0)          # row miss (activate)
        second = dram.access(0x40)        # same row: row hit
        assert second < first
        assert dram.stats.row_hits == 1
        assert dram.stats.row_misses == 1

    def test_row_conflict_slowest(self):
        config = DRAMConfig()
        dram = DRAMModel(config)
        dram.access(0x0)
        conflict_addr = config.row_size_bytes * config.num_banks  # same bank, new row
        bank0, row0 = dram.map_address(0x0)
        bank1, row1 = dram.map_address(conflict_addr)
        assert bank0 == bank1 and row0 != row1
        latency = dram.access(conflict_addr)
        assert dram.stats.row_conflicts == 1
        assert latency >= dram.idle_latency()

    def test_core_cycle_conversion(self):
        config = DRAMConfig(core_frequency_ghz=4.0, dram_frequency_mhz=1200.0)
        assert config.core_cycles_per_dram_cycle == pytest.approx(10.0 / 3.0)


class TestAddressMapping:
    def test_distinct_rows_map_to_different_banks(self):
        dram = DRAMModel()
        banks = {dram.map_address(i * dram.config.row_size_bytes)[0]
                 for i in range(dram.config.num_banks)}
        assert len(banks) == dram.config.num_banks

    def test_same_row_same_mapping(self):
        dram = DRAMModel()
        assert dram.map_address(0x100) == dram.map_address(0x180)


class TestStatistics:
    def test_read_write_counters(self):
        dram = DRAMModel()
        dram.access(0x0)
        dram.access(0x40, is_write=True)
        assert dram.stats.reads == 1
        assert dram.stats.writes == 1
        assert dram.stats.accesses == 2
        assert dram.stats.average_latency > 0

    def test_row_hit_ratio(self):
        dram = DRAMModel()
        dram.access(0x0)
        dram.access(0x40)
        dram.access(0x80)
        assert dram.stats.row_hit_ratio == pytest.approx(2.0 / 3.0)

    def test_reset(self):
        dram = DRAMModel()
        dram.access(0x0)
        dram.reset_statistics()
        assert dram.stats.accesses == 0
        assert dram.stats.total_latency_core_cycles == 0.0

    def test_queueing_delay_is_bounded(self):
        """Back-to-back same-bank accesses must not accumulate unbounded
        queueing delay (the functional front end has no backpressure)."""
        dram = DRAMModel()
        latencies = [dram.access(0x0 if i % 2 == 0 else 0x40)
                     for i in range(200)]
        assert max(latencies) <= 3 * dram.idle_latency()
