"""Scalar-vs-batch kernel bit-identity and the kernel/options API.

The batch kernel's contract is *bit-identical results by construction*:
for every buffer and every system it must produce exactly the stats dict
the scalar reference loop produces — float accumulators included, which
is why these tests compare full serialized result dicts and per-access
result lists, never aggregates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.block import AccessType
from repro.sim.config import SystemConfig
from repro.sim.engine import SimulationEngine, SimulationJob, execute_job
from repro.sim.kernels import (
    DEFAULT_KERNEL,
    KERNELS,
    BatchKernel,
    Kernel,
    ScalarKernel,
    kernel_names,
    resolve_kernel,
)
from repro.sim.options import EngineOptions
from repro.sim.store import serialize_result
from repro.sim.system import SimulatedSystem
from repro.trace import KIND_LOAD, KIND_STORE, TraceBuffer
from repro.experiments import COMPARED_SYSTEMS
from repro.workloads import APPLICATIONS


def _buffer(addresses, kinds=None, pcs=None) -> TraceBuffer:
    n = len(addresses)
    kinds = kinds if kinds is not None else [KIND_LOAD] * n
    pcs = pcs if pcs is not None else [0x400 + 4 * i for i in range(n)]
    return TraceBuffer(addresses, pcs, kinds, [8] * n, [False] * n,
                       [0] * n, [0] * n)


def _run(buffer: TraceBuffer, kernel: str, predictor: str = "lp"):
    system = SimulatedSystem(
        SystemConfig.paper_single_core().with_predictor(predictor))
    return serialize_result(
        system.run_trace(buffer, "crafted", kernel=kernel))


def assert_kernels_identical(buffer: TraceBuffer, predictor: str = "lp"):
    assert _run(buffer, "scalar", predictor) \
        == _run(buffer, "batch", predictor)


# ======================================================================
# Full-grid bit-identity: all apps x all compared systems
# ======================================================================
@pytest.mark.parametrize("app", APPLICATIONS)
def test_grid_bit_identity(app):
    """Full serialized stats dicts match for every compared system."""
    for predictor in COMPARED_SYSTEMS:
        job = SimulationJob(workload=app, predictor=predictor,
                            num_accesses=400, warmup_accesses=150, seed=3)
        scalar = serialize_result(execute_job(job, kernel="scalar"))
        batch = serialize_result(execute_job(job, kernel="batch"))
        assert scalar == batch, f"{app}/{predictor} diverged"


# ======================================================================
# Segment-boundary and degenerate buffers
# ======================================================================
class TestSegmentBoundaries:
    def test_empty_buffer(self):
        buffer = _buffer([64])[:0]
        assert len(buffer) == 0
        for kernel in kernel_names():
            system = SimulatedSystem(SystemConfig.paper_single_core())
            assert system.hierarchy.run_buffer(buffer, kernel=kernel) == []

    def test_single_access_buffer(self):
        assert_kernels_identical(_buffer([0x1000]))

    def test_fill_on_first_access(self):
        # Head access misses and fills; the tail must bulk off the fill.
        assert_kernels_identical(_buffer([0x4000] * 10))

    def test_runs_with_stores(self):
        kinds = ([KIND_LOAD, KIND_STORE, KIND_LOAD, KIND_STORE] * 5)[:18]
        assert_kernels_identical(_buffer([0x2000] * 18, kinds=kinds))

    def test_store_only_run(self):
        assert_kernels_identical(
            _buffer([0x8000] * 7, kinds=[KIND_STORE] * 7))

    def test_alternating_blocks(self):
        # Worst case for the batch kernel: every run has length 1.
        addresses = [0x1000, 0x2000] * 20
        assert_kernels_identical(_buffer(addresses))

    def test_sequential_blocks_trigger_prefetch_tags(self):
        # A sequential sweep tags next-line blocks; repeats then hit
        # tagged lines, exercising the tagged-hit fallback + retry.
        addresses = []
        for i in range(8):
            addresses.extend([0x10000 + 64 * i] * 5)
        addresses.extend([0x10000 + 64 * 3] * 6)
        assert_kernels_identical(_buffer(addresses))

    def test_run_longer_than_prefetch_window(self):
        # Bulk counts past the 32-entry window deques exercise the
        # eviction arithmetic (drop >= len branches).
        assert_kernels_identical(_buffer([0x3000] * 100))

    def test_window_straddling_runs(self):
        # Misses first (Trues in the inflight window), then a long run
        # that partially evicts them (0 < drop < len branch).
        addresses = [0x100000 + 4096 * i for i in range(20)]
        addresses.extend([0x200000] * 25)
        assert_kernels_identical(_buffer(addresses))

    def test_page_boundary_runs(self):
        # Same block never crosses a page, but adjacent runs alternate
        # pages so TLB recency moves between runs.
        addresses = []
        for i in range(6):
            addresses.extend([0x40000 + 4096 * (i % 2)] * 4)
        assert_kernels_identical(_buffer(addresses))

    @pytest.mark.parametrize("predictor", COMPARED_SYSTEMS)
    def test_crafted_mix_all_systems(self, predictor):
        rng = np.random.default_rng(11)
        pages = rng.integers(0, 64, size=120)
        runs = rng.integers(1, 9, size=120)
        addresses, kinds = [], []
        for page, run in zip(pages, runs):
            base = 0x100000 + int(page) * 4096
            addresses.extend([base + 64 * int(run)] * int(run))
            kinds.extend([KIND_STORE if (page + run) % 3 == 0
                          else KIND_LOAD] * int(run))
        assert_kernels_identical(_buffer(addresses, kinds=kinds),
                                 predictor=predictor)


# ======================================================================
# bulk_repeat_hits preconditions (direct unit probes)
# ======================================================================
class TestBulkPreconditions:
    @staticmethod
    def _snapshot(hierarchy):
        stats = hierarchy.stats
        return (stats.demand_accesses, stats.l1_hits, stats.loads,
                stats.stores, stats.total_demand_latency,
                dict(hierarchy.energy.by_category),
                hierarchy.tlb.l1.stats.hits,
                hierarchy.l1.stats.demand_hits, hierarchy.l1._clock)

    def test_refuses_cold_line_and_page_without_mutation(self):
        system = SimulatedSystem(SystemConfig.paper_single_core())
        hierarchy = system.hierarchy
        before = self._snapshot(hierarchy)
        block = 0x7000
        page = 0x7000 // hierarchy._l1_page_size
        assert hierarchy.bulk_repeat_hits(block, page, 4, 0) is False
        assert self._snapshot(hierarchy) == before

    def test_refuses_cold_tlb_page(self):
        system = SimulatedSystem(SystemConfig.paper_single_core())
        hierarchy = system.hierarchy
        hierarchy.run_buffer(_buffer([0x7000]), kernel="scalar")
        # Warm line, but probe a page the TLB has never seen.
        assert hierarchy.bulk_repeat_hits(0x7000, 0x7123456, 4, 0) is False

    def test_refuses_tagged_block(self):
        system = SimulatedSystem(SystemConfig.paper_single_core())
        hierarchy = system.hierarchy
        hierarchy.run_buffer(_buffer([0x7000]), kernel="scalar")
        prefetcher = hierarchy.l1_prefetcher
        page = 0x7000 // hierarchy._l1_page_size
        assert hierarchy.bulk_repeat_hits(0x7000, page, 4, 0) is True
        prefetcher._tagged[0x7000] = True
        assert hierarchy.bulk_repeat_hits(0x7000, page, 4, 0) is False

    def test_bulk_equals_scalar_counters(self):
        buffers = _buffer([0x7000] * 9)
        scalar = SimulatedSystem(SystemConfig.paper_single_core())
        batch = SimulatedSystem(SystemConfig.paper_single_core())
        results_s = scalar.hierarchy.run_buffer(buffers, kernel="scalar")
        results_b = batch.hierarchy.run_buffer(buffers, kernel="batch")
        assert results_s == results_b
        for a, b in ((scalar, batch),):
            assert a.hierarchy.stats.l1_hits == b.hierarchy.stats.l1_hits
            assert (a.hierarchy.stats.total_demand_latency
                    == b.hierarchy.stats.total_demand_latency)
            assert (a.hierarchy.energy.by_category
                    == b.hierarchy.energy.by_category)


# ======================================================================
# Kernel selection and EngineOptions resolution
# ======================================================================
class TestKernelSelection:
    def test_registry_and_names(self):
        assert set(KERNELS) == {"scalar", "batch"}
        assert kernel_names()[0] == DEFAULT_KERNEL == "batch"

    def test_resolve_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel(None).name == "batch"
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert resolve_kernel(None).name == "scalar"
        # Explicit argument beats the environment.
        assert resolve_kernel("batch").name == "batch"

    def test_resolve_instance_passthrough(self):
        kernel = ScalarKernel()
        assert resolve_kernel(kernel) is kernel
        assert isinstance(resolve_kernel("batch"), BatchKernel)
        assert isinstance(resolve_kernel("scalar"), Kernel)

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("turbo")

    def test_engine_threads_kernel(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert SimulationEngine(store=False).kernel == "batch"
        assert SimulationEngine(store=False,
                                kernel="scalar").kernel == "scalar"
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert SimulationEngine(store=False).kernel == "scalar"

    def test_engine_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            SimulationEngine(store=False, kernel="turbo")


class TestEngineOptions:
    def test_defaults(self, monkeypatch):
        for var in ("REPRO_KERNEL", "REPRO_JOBS", "REPRO_STORE",
                    "REPRO_TRACE_DIR", "REPRO_FAULTS", "REPRO_SHARDS",
                    "REPRO_SHARDING", "REPRO_POOL"):
            monkeypatch.delenv(var, raising=False)
        options = EngineOptions.from_env()
        assert options == EngineOptions(kernel="batch", jobs=1, store=None,
                                        trace_dir=None, faults=None)
        assert options.shards == 1
        assert options.sharding == "exact"
        assert options.pool == "process"

    def test_environment_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv("REPRO_STORE", "/tmp/s")
        monkeypatch.setenv("REPRO_TRACE_DIR", "")
        monkeypatch.setenv("REPRO_FAULTS", "store.append:eio@times=1")
        options = EngineOptions.from_env()
        assert options.kernel == "scalar"
        assert options.jobs == 4
        assert options.store == "/tmp/s"
        assert options.trace_dir == ""  # empty disables spilling
        assert options.faults == "store.append:eio@times=1"

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        monkeypatch.setenv("REPRO_JOBS", "4")
        options = EngineOptions.from_env(kernel="batch", jobs=2)
        assert options.kernel == "batch"
        assert options.jobs == 2

    def test_bad_jobs_message(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError,
                           match="REPRO_JOBS must be an integer"):
            EngineOptions.from_env()

    def test_with_overrides(self):
        options = EngineOptions(kernel="scalar", jobs=2)
        updated = options.with_overrides(kernel="batch")
        assert updated.kernel == "batch" and updated.jobs == 2
        assert options.kernel == "scalar"  # frozen, copy-on-write

    def test_sharding_knobs_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        monkeypatch.setenv("REPRO_SHARDING", "approx")
        monkeypatch.setenv("REPRO_POOL", "thread")
        options = EngineOptions.from_env()
        assert options.shards == 4
        assert options.sharding == "approx"
        assert options.pool == "thread"

    def test_shards_zero_means_one_per_core(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        options = EngineOptions.from_env(shards=0)
        assert options.shards == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_SHARDS", "0")
        assert EngineOptions.from_env().shards == (os.cpu_count() or 1)

    def test_explicit_sharding_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "8")
        monkeypatch.setenv("REPRO_SHARDING", "approx")
        monkeypatch.setenv("REPRO_POOL", "thread")
        options = EngineOptions.from_env(shards=2, sharding="exact",
                                         pool="process")
        assert options.shards == 2
        assert options.sharding == "exact"
        assert options.pool == "process"

    def test_bad_sharding_knobs_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "several")
        with pytest.raises(ValueError,
                           match="REPRO_SHARDS must be an integer"):
            EngineOptions.from_env()
        monkeypatch.delenv("REPRO_SHARDS")
        # Negative counts clamp to the serial path instead of raising.
        assert EngineOptions.from_env(shards=-3).shards == 1
        with pytest.raises(ValueError, match="sharding mode"):
            EngineOptions.from_env(sharding="fuzzy")
        monkeypatch.setenv("REPRO_SHARDING", "fuzzy")
        with pytest.raises(ValueError, match="sharding mode"):
            EngineOptions.from_env()
        monkeypatch.delenv("REPRO_SHARDING")
        with pytest.raises(ValueError, match="pool kind"):
            EngineOptions.from_env(pool="fibers")
        monkeypatch.setenv("REPRO_POOL", "fibers")
        with pytest.raises(ValueError, match="pool kind"):
            EngineOptions.from_env()


# ======================================================================
# The repro.api facade
# ======================================================================
class TestApiFacade:
    def test_blessed_surface(self):
        import repro.api as api
        for name in ("run_job", "run_figure", "open_store", "connect",
                     "EngineOptions", "SimulationJob", "MixJob",
                     "resolve_kernel", "SimulationEngine"):
            assert hasattr(api, name), name
            assert name in api.__all__, name

    def test_run_job_matches_engine(self):
        from repro.api import run_job
        job = SimulationJob(workload="stream", predictor="lp",
                            num_accesses=200, warmup_accesses=50)
        direct = serialize_result(execute_job(job, kernel="batch"))
        via_api = serialize_result(run_job(job, store=False))
        assert direct == via_api

    def test_open_store_memoizes(self, tmp_path, monkeypatch):
        from repro.api import open_store
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert open_store() is None
        first = open_store(tmp_path / "store")
        assert open_store(tmp_path / "store") is first
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        assert open_store() is first

    def test_run_figure_rejects_unknown(self):
        from repro.api import run_figure
        with pytest.raises(ValueError, match="unknown experiment"):
            run_figure("figure999")


class TestServiceKernel:
    def test_stats_surface_kernel(self, tmp_path):
        from repro.service import SimulationService
        service = SimulationService(tmp_path / "store", jobs=1,
                                    kernel="scalar")
        try:
            payload = service.stats()
            assert payload["kernel"] == "scalar"
        finally:
            service.close()

    def test_default_kernel_in_stats(self, tmp_path, monkeypatch):
        from repro.service import SimulationService
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        service = SimulationService(tmp_path / "store", jobs=1)
        try:
            assert service.stats()["kernel"] == "batch"
        finally:
            service.close()


# ======================================================================
# The access() record path stays equivalent to the kernel seam
# ======================================================================
def test_record_path_matches_kernels():
    addresses = [0x5000] * 6 + [0x6000, 0x5000, 0x5008]
    buffer = _buffer(addresses)
    via_buffer = SimulatedSystem(SystemConfig.paper_single_core())
    via_records = SimulatedSystem(SystemConfig.paper_single_core())
    buffer_results = via_buffer.hierarchy.run_buffer(buffer, kernel="batch")
    record_results = via_records.hierarchy.run_trace(
        [buffer[i] for i in range(len(buffer))])
    assert buffer_results == record_results


def test_store_access_marks_line_dirty():
    system = SimulatedSystem(SystemConfig.paper_single_core())
    hierarchy = system.hierarchy
    kinds = [KIND_LOAD] + [KIND_STORE] * 3
    hierarchy.run_buffer(_buffer([0x9000] * 4, kinds=kinds), kernel="batch")
    l1 = hierarchy.l1
    if l1._block_shift >= 0:
        set_index = (0x9000 >> l1._block_shift) & l1._set_mask
        way = l1._tag_to_way[set_index].get(0x9000 >> l1._tag_shift)
    else:
        set_index, way = l1._find(0x9000)
    assert way is not None
    assert l1._lines[set_index][way].dirty
