"""Unit and property tests for the replacement policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.replacement import (
    LRUPolicy,
    RandomPolicy,
    SRRIPPolicy,
    TreePLRUPolicy,
    make_replacement_policy,
)


class TestFactory:
    @pytest.mark.parametrize("name", ["lru", "plru", "random", "srrip"])
    def test_known_policies(self, name):
        policy = make_replacement_policy(name, num_sets=4, associativity=4)
        assert policy.num_sets == 4
        assert policy.associativity == 4

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_replacement_policy("mru", 4, 4)

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            LRUPolicy(num_sets=0, associativity=4)
        with pytest.raises(ValueError):
            LRUPolicy(num_sets=4, associativity=0)


class TestLRU:
    def test_prefers_invalid_way(self):
        policy = LRUPolicy(num_sets=1, associativity=4)
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        victim = policy.victim(0, [True, True, False, True])
        assert victim == 2

    def test_evicts_least_recently_used(self):
        policy = LRUPolicy(num_sets=1, associativity=4)
        for way in range(4):
            policy.on_fill(0, way)
        policy.on_access(0, 0)  # way 0 becomes MRU; way 1 is now LRU
        assert policy.victim(0, [True] * 4) == 1

    def test_access_order_fully_respected(self):
        policy = LRUPolicy(num_sets=1, associativity=4)
        for way in range(4):
            policy.on_fill(0, way)
        for way in (2, 0, 3, 1):
            policy.on_access(0, way)
        # Recency order is now 2 < 0 < 3 < 1, so way 2 is the victim.
        assert policy.victim(0, [True] * 4) == 2

    def test_sets_are_independent(self):
        policy = LRUPolicy(num_sets=2, associativity=2)
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        policy.on_fill(1, 1)
        policy.on_fill(1, 0)
        assert policy.victim(0, [True, True]) == 0
        assert policy.victim(1, [True, True]) == 1


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRUPolicy(num_sets=1, associativity=3)

    def test_victim_avoids_recently_used_half(self):
        policy = TreePLRUPolicy(num_sets=1, associativity=4)
        for way in range(4):
            policy.on_fill(0, way)
        policy.on_access(0, 3)
        victim = policy.victim(0, [True] * 4)
        assert victim in (0, 1)  # opposite half of the most recent access

    def test_prefers_invalid_way(self):
        policy = TreePLRUPolicy(num_sets=1, associativity=4)
        assert policy.victim(0, [True, False, True, True]) == 1


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(num_sets=1, associativity=8, seed=7)
        b = RandomPolicy(num_sets=1, associativity=8, seed=7)
        picks_a = [a.victim(0, [True] * 8) for _ in range(20)]
        picks_b = [b.victim(0, [True] * 8) for _ in range(20)]
        assert picks_a == picks_b

    def test_victims_in_range(self):
        policy = RandomPolicy(num_sets=1, associativity=4, seed=3)
        for _ in range(50):
            assert 0 <= policy.victim(0, [True] * 4) < 4


class TestSRRIP:
    def test_new_lines_evicted_before_reused_lines(self):
        policy = SRRIPPolicy(num_sets=1, associativity=2)
        policy.on_fill(0, 0)
        policy.on_access(0, 0)   # way 0 promoted to near-immediate re-reference
        policy.on_fill(0, 1)     # way 1 inserted with a long interval
        assert policy.victim(0, [True, True]) == 1

    def test_aging_terminates(self):
        policy = SRRIPPolicy(num_sets=1, associativity=4)
        for way in range(4):
            policy.on_fill(0, way)
            policy.on_access(0, way)
        victim = policy.victim(0, [True] * 4)
        assert 0 <= victim < 4


@given(
    accesses=st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                      max_size=200),
    policy_name=st.sampled_from(["lru", "plru", "random", "srrip"]),
)
@settings(max_examples=60, deadline=None)
def test_property_victim_always_legal(accesses, policy_name):
    """Whatever the access pattern, the victim is always a legal way index."""
    policy = make_replacement_policy(policy_name, num_sets=2, associativity=8)
    for way in accesses:
        policy.on_fill(way % 2, way)
        policy.on_access(way % 2, way)
    for set_index in range(2):
        victim = policy.victim(set_index, [True] * 8)
        assert 0 <= victim < 8


@given(valid=st.lists(st.booleans(), min_size=8, max_size=8))
@settings(max_examples=60, deadline=None)
def test_property_invalid_ways_always_preferred(valid):
    """Every policy must fill invalid ways before evicting live lines."""
    for name in ("lru", "plru", "random", "srrip"):
        policy = make_replacement_policy(name, num_sets=1, associativity=8)
        victim = policy.victim(0, valid)
        if not all(valid):
            assert valid[victim] is False
