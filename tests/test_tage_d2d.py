"""Unit tests for the TAGE and D2D/Ideal baseline predictors."""

from __future__ import annotations

import pytest

from repro.core.d2d import D2DConfig, DirectToDataPredictor, IdealPredictor
from repro.core.tage import (
    TAGEConfig,
    TAGELevelPredictor,
    make_tage_2kb,
    make_tage_8kb,
)
from repro.memory.block import Level


class TestTAGEConfig:
    def test_storage_variants(self):
        assert make_tage_2kb().storage_bits() == 2048 * 8
        assert make_tage_8kb().storage_bits() == 8192 * 8

    def test_bigger_tables_for_bigger_budget(self):
        small = TAGEConfig(storage_bytes=2048)
        large = TAGEConfig(storage_bytes=8192)
        assert large.entries_per_table > small.entries_per_table

    def test_history_lengths_are_geometric_and_increasing(self):
        lengths = TAGEConfig(num_tagged_tables=4, min_history=4,
                             max_history=64).history_lengths()
        assert len(lengths) == 4
        assert lengths == sorted(lengths)
        assert lengths[0] == 4 and lengths[-1] == 64

    def test_energy_scales_with_storage(self):
        assert (make_tage_8kb().energy_per_prediction_nj()
                > make_tage_2kb().energy_per_prediction_nj())

    def test_names(self):
        assert make_tage_2kb().name == "TAGE-2KB"
        assert make_tage_8kb().name == "TAGE-8KB"


class TestTAGELearning:
    def test_learns_repeated_block_location(self):
        predictor = make_tage_8kb()
        block = 0x1234 * 64
        for _ in range(8):
            prediction = predictor.predict(block)
            predictor.train(block, 0, prediction, Level.MEM)
        assert Level.MEM in predictor.predict(block).levels

    def test_base_table_learns_global_popularity(self):
        predictor = make_tage_2kb()
        for i in range(300):
            block = (0x8000 + i) * 64
            prediction = predictor.predict(block)
            predictor.train(block, 0, prediction, Level.MEM)
        # A brand-new block should now be predicted from popularity counters.
        prediction = predictor.predict(0x900000 * 64)
        assert Level.MEM in prediction.levels

    def test_sequential_fallback_variant(self):
        predictor = TAGELevelPredictor(TAGEConfig(base_table_fallback=False))
        prediction = predictor.predict(0xABC0)
        assert prediction.levels == (Level.L2,)
        assert prediction.source == "tage-miss"

    def test_allocation_on_misprediction(self):
        predictor = make_tage_2kb()
        block = 0x77 * 64
        prediction = predictor.predict(block)
        predictor.train(block, 0, prediction, Level.MEM)
        assert predictor.allocations >= 0  # allocation only when wrong
        prediction = predictor.predict(block)
        predictor.train(block, 0, prediction, Level.L2)
        assert predictor.allocations >= 1

    def test_prefetch_coordination_updates_matching_entries(self):
        predictor = make_tage_8kb()
        block = 0x4242 * 64
        for _ in range(4):
            prediction = predictor.predict(block)
            predictor.train(block, 0, prediction, Level.MEM)
        before = predictor.stats.updates
        predictor.on_fill(block, Level.L3, from_prefetch=True)
        assert predictor.stats.updates >= before

    def test_dirty_eviction_counts_as_move_down(self):
        predictor = make_tage_8kb()
        predictor.on_eviction(0x40, Level.L2, dirty=False)  # ignored
        predictor.on_eviction(0x40, Level.L2, dirty=True)   # -> L3 nudge
        # No exception and history/statistics stay consistent.
        assert predictor.stats.predictions == 0


class TestD2D:
    def test_tracks_exact_location(self):
        predictor = DirectToDataPredictor()
        assert predictor.predict(0x40).levels == (Level.MEM,)
        predictor.on_fill(0x40, Level.L2)
        assert predictor.predict(0x40).levels == (Level.L2,)
        predictor.on_eviction(0x40, Level.L2, dirty=False)
        assert predictor.predict(0x40).levels == (Level.MEM,)

    def test_clean_evictions_tracked_unlike_locmap(self):
        predictor = DirectToDataPredictor()
        predictor.on_fill(0x80, Level.L3)
        predictor.on_fill(0x80, Level.L2)
        predictor.on_eviction(0x80, Level.L2, dirty=False)
        # Still cached in the LLC.
        assert predictor.predict(0x80).levels == (Level.L3,)

    def test_never_mispredicts_when_tracking_is_complete(self):
        predictor = DirectToDataPredictor()
        blocks = [i * 64 for i in range(64)]
        for block in blocks[:32]:
            predictor.on_fill(block, Level.L2)
        for block in blocks:
            expected = Level.L2 if block < 32 * 64 else Level.MEM
            prediction = predictor.predict(block)
            outcome = predictor.train(block, 0, prediction, expected)
            assert prediction.levels == (expected,)
        assert predictor.stats.accuracy == 1.0

    def test_hub_energy_grows_with_miss_ratio(self):
        config = D2DConfig(hub_bytes=4096)
        predictor = DirectToDataPredictor(config)
        # Scattered pages: many Hub misses -> higher per-prediction energy.
        for i in range(2000):
            predictor.predict(i * 8192)
        scattered = predictor.energy_per_prediction_nj()
        dense = DirectToDataPredictor(config)
        for _ in range(2000):
            dense.predict(0x1000)
        assert scattered > dense.energy_per_prediction_nj()

    def test_zero_prediction_latency(self):
        assert DirectToDataPredictor().prediction_latency == 0
        assert DirectToDataPredictor().storage_bits() == 4096 * 8


class TestIdealPredictor:
    def test_is_free_and_sequential(self):
        predictor = IdealPredictor()
        assert predictor.prediction_latency == 0
        assert predictor.predict(0x40).is_sequential
        assert predictor.energy_per_prediction_nj() == 0.0
