"""Integration tests for system assembly and the single-core driver."""

from __future__ import annotations

import pytest

from repro.core.base import SequentialPredictor
from repro.core.d2d import DirectToDataPredictor, IdealPredictor
from repro.core.level_predictor import CacheLevelPredictor
from repro.core.tage import TAGELevelPredictor
from repro.prefetch.base import NullPrefetcher
from repro.prefetch.throttle import ThrottledPrefetcher
from repro.sim.config import PREDICTOR_NAMES, SystemConfig, table1_description
from repro.sim.system import (
    SimulatedSystem,
    build_system,
    make_llc_prefetcher,
    make_predictor,
    run_predictor_comparison,
)
from repro.workloads import build_workload


class TestPredictorFactory:
    def test_all_registry_names_build(self):
        for name in PREDICTOR_NAMES:
            assert make_predictor(name) is not None

    def test_specific_types(self):
        assert isinstance(make_predictor("baseline"), SequentialPredictor)
        assert isinstance(make_predictor("lp"), CacheLevelPredictor)
        assert isinstance(make_predictor("tage-2kb"), TAGELevelPredictor)
        assert isinstance(make_predictor("d2d"), DirectToDataPredictor)
        assert isinstance(make_predictor("ideal"), IdealPredictor)

    def test_tage_sizes(self):
        assert make_predictor("tage-2kb").storage_bits() == 2048 * 8
        assert make_predictor("tage-8kb").storage_bits() == 8192 * 8

    def test_unknown_predictor(self):
        with pytest.raises(ValueError):
            make_predictor("oracle9000")

    def test_metadata_cache_size_flows_from_config(self):
        config = SystemConfig.paper_single_core()
        config.metadata_cache_bytes = 4096
        predictor = make_predictor("lp", config)
        assert predictor.locmap.metadata_cache.size_bytes == 4096


class TestSystemConfig:
    def test_single_and_multi_core_llc_sizes(self):
        single = SystemConfig.paper_single_core()
        multi = SystemConfig.paper_multi_core()
        assert single.hierarchy.l3.size_bytes == 2 * 1024 * 1024
        assert multi.hierarchy.l3.size_bytes == 8 * 1024 * 1024
        assert multi.num_cores == 4

    def test_with_predictor_copies(self):
        config = SystemConfig.paper_single_core("baseline")
        other = config.with_predictor("lp")
        assert other.predictor == "lp"
        assert config.predictor == "baseline"

    def test_sensitivity_variants_cover_figure15(self):
        variants = SystemConfig.sensitivity_variants()
        assert set(variants) == {"default", "fast-seq-llc", "parallel-llc",
                                 "parallel-llc-lsq96", "aggressive-core"}
        assert variants["aggressive-core"].core.rob_entries == 224
        parallel_llc = variants["parallel-llc"].hierarchy.l3
        assert parallel_llc.tag_latency + parallel_llc.data_latency == 40

    def test_table1_description_mentions_key_parameters(self):
        table = table1_description()
        assert "32 KB" in table["L1 Cache"]
        assert "256 KB" in table["L2 Cache"]
        assert "MOESI" in table["Coherency"]
        assert "DCPT" in table["L3 Cache"]

    def test_prefetcher_factory(self):
        paper = make_llc_prefetcher(SystemConfig.paper_single_core())
        assert isinstance(paper, ThrottledPrefetcher)
        none_config = SystemConfig.paper_single_core()
        none_config.prefetch_scheme = "none"
        assert isinstance(make_llc_prefetcher(none_config), NullPrefetcher)


class TestSimulatedSystem:
    def test_run_workload_produces_consistent_result(self):
        system = build_system("lp")
        result = system.run_workload(build_workload("gups"), 1500, seed=1)
        assert result.workload == "gups"
        assert result.predictor == "CacheLevelPredictor"
        assert result.execution.instructions > 0
        assert result.hierarchy_stats.demand_accesses == 1500
        assert result.cache_hierarchy_energy_nj > 0
        stats = result.predictor_stats
        assert stats.predictions == result.hierarchy_stats.predictions

    def test_warmup_excluded_from_statistics(self):
        system = build_system("lp")
        result = system.run_workload(build_workload("stream"), 1000, seed=1,
                                     warmup_accesses=500)
        assert result.hierarchy_stats.demand_accesses == 1000

    def test_ideal_system_uses_ideal_latency_flag(self):
        system = SimulatedSystem(SystemConfig.paper_single_core("ideal"))
        assert system.hierarchy.config.ideal_miss_latency

    def test_comparison_runs_same_trace_for_all_systems(self):
        results = run_predictor_comparison(
            build_workload("gups"), num_accesses=1200,
            predictors=("baseline", "lp", "ideal"), seed=3)
        accesses = {r.hierarchy_stats.demand_accesses for r in results.values()}
        assert accesses == {1200}
        baseline = results["baseline"]
        assert results["ideal"].speedup_over(baseline) >= 1.0
        assert results["lp"].speedup_over(baseline) >= 1.0

    def test_lp_beats_baseline_on_memory_bound_workload(self):
        """The headline claim on a clearly memory-bound workload."""
        results = run_predictor_comparison(
            build_workload("gapbs.pr"), num_accesses=4000,
            predictors=("baseline", "lp", "ideal"), seed=0,
            warmup_accesses=1000)
        baseline = results["baseline"]
        lp_speedup = results["lp"].speedup_over(baseline)
        ideal_speedup = results["ideal"].speedup_over(baseline)
        assert lp_speedup > 1.02
        assert ideal_speedup >= lp_speedup

    def test_lp_saves_cache_energy_on_memory_bound_workload(self):
        results = run_predictor_comparison(
            build_workload("gups"), num_accesses=3000,
            predictors=("baseline", "lp"), seed=0, warmup_accesses=500)
        assert results["lp"].normalized_energy_over(results["baseline"]) < 1.0

    def test_recovery_summary_consistent(self):
        results = run_predictor_comparison(
            build_workload("623.xalan"), num_accesses=3000,
            predictors=("baseline", "lp"), seed=0)
        recovery = results["lp"].recovery
        assert recovery.predictions == results["lp"].hierarchy_stats.predictions
        assert 0.0 <= recovery.recovery_rate <= 1.0
        assert recovery.recovery_energy_fraction < 0.2
