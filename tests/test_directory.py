"""Unit tests for the MOESI coherence logic and the directory."""

from __future__ import annotations

import pytest

from repro.memory.block import CoherenceState
from repro.memory.coherence import (
    BusRequest,
    decide_read,
    decide_write,
    is_valid_transition,
)
from repro.memory.directory import Directory


class TestCoherenceDecisions:
    def test_read_of_uncached_block_installs_exclusive(self):
        decision = decide_read(requestor=0, sharers=set(), owner=None)
        assert decision.new_requestor_state is CoherenceState.EXCLUSIVE
        assert not decision.data_from_owner

    def test_read_of_shared_block_installs_shared(self):
        decision = decide_read(requestor=0, sharers={1}, owner=None)
        assert decision.new_requestor_state is CoherenceState.SHARED

    def test_read_from_dirty_owner_forwards_data(self):
        decision = decide_read(requestor=0, sharers=set(), owner=2)
        assert decision.data_from_owner
        assert decision.owner_to_downgrade == 2

    def test_write_invalidates_other_sharers(self):
        decision = decide_write(requestor=0, sharers={1, 2, 0}, owner=None)
        assert decision.sharers_to_invalidate == frozenset({1, 2})
        assert decision.new_requestor_state is CoherenceState.MODIFIED

    def test_write_does_not_invalidate_self(self):
        decision = decide_write(requestor=0, sharers={0}, owner=0)
        assert decision.sharers_to_invalidate == frozenset()
        assert not decision.data_from_owner

    def test_transition_table(self):
        assert is_valid_transition(CoherenceState.INVALID, CoherenceState.EXCLUSIVE)
        assert is_valid_transition(CoherenceState.MODIFIED, CoherenceState.OWNED)
        assert is_valid_transition(CoherenceState.SHARED, CoherenceState.SHARED)
        assert not is_valid_transition(CoherenceState.SHARED,
                                       CoherenceState.EXCLUSIVE)


class TestDirectory:
    def test_read_records_sharer(self):
        directory = Directory(num_cores=2)
        directory.handle_request(0x40, requestor=0, request=BusRequest.GET_SHARED)
        assert directory.holders(0x40) == {0}

    def test_write_makes_requestor_sole_owner(self):
        directory = Directory(num_cores=4)
        directory.handle_request(0x40, 0, BusRequest.GET_SHARED)
        directory.handle_request(0x40, 1, BusRequest.GET_SHARED)
        decision = directory.handle_request(0x40, 2, BusRequest.GET_MODIFIED)
        assert decision.sharers_to_invalidate == frozenset({0, 1})
        assert directory.holders(0x40) == {2}
        assert directory.owner_of(0x40) == 2

    def test_dirty_owner_forwards_on_read(self):
        directory = Directory(num_cores=2)
        directory.handle_request(0x80, 0, BusRequest.GET_MODIFIED)
        decision = directory.handle_request(0x80, 1, BusRequest.GET_SHARED)
        assert decision.data_from_owner
        assert directory.stats.owner_forwards == 1
        assert directory.holders(0x80) == {0, 1}

    def test_writeback_removes_tracking(self):
        directory = Directory(num_cores=2)
        directory.handle_request(0x80, 0, BusRequest.GET_MODIFIED)
        directory.handle_request(0x80, 0, BusRequest.PUT_MODIFIED)
        assert directory.holders(0x80) == set()
        assert directory.tracked_blocks() == 0

    def test_clean_eviction_notification(self):
        directory = Directory(num_cores=2)
        directory.handle_request(0xC0, 0, BusRequest.GET_SHARED)
        directory.handle_request(0xC0, 0, BusRequest.PUT_SHARED)
        assert directory.holders(0xC0) == set()

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            Directory(num_cores=0)


class TestMispredictionDetection:
    """Section III.E: the directory detects bypassed private levels."""

    def test_detects_block_in_requestors_private_cache(self):
        directory = Directory(num_cores=2)
        directory.record_private_fill(0x100, core=0)
        assert directory.detect_bypass_misprediction(0x100, requestor=0)
        assert directory.stats.misprediction_detections == 1

    def test_no_detection_for_untracked_block(self):
        directory = Directory(num_cores=2)
        assert not directory.detect_bypass_misprediction(0x100, requestor=0)

    def test_no_detection_after_eviction(self):
        directory = Directory(num_cores=2)
        directory.record_private_fill(0x100, core=0)
        directory.record_private_eviction(0x100, core=0)
        assert not directory.detect_bypass_misprediction(0x100, requestor=0)

    def test_is_cached_privately_excludes_core(self):
        directory = Directory(num_cores=2)
        directory.record_private_fill(0x100, core=1)
        assert directory.is_cached_privately(0x100)
        assert not directory.is_cached_privately(0x100, exclude_core=1)

    def test_record_private_fill_dirty_sets_owner(self):
        directory = Directory(num_cores=2)
        directory.record_private_fill(0x200, core=1, dirty=True)
        assert directory.owner_of(0x200) == 1
