"""Unit tests for the TLB hierarchy and page walker."""

from __future__ import annotations

import pytest

from repro.memory.tlb import TLB, TLBConfig, TLBHierarchy


class TestSingleTLB:
    def test_miss_then_hit(self):
        tlb = TLB(TLBConfig(entries=16, associativity=4))
        assert not tlb.lookup(0x1000)
        tlb.insert(0x1000)
        assert tlb.lookup(0x1234)  # same 4 KiB page
        assert not tlb.lookup(0x2000)

    def test_capacity_eviction_is_lru(self):
        tlb = TLB(TLBConfig(entries=4, associativity=4))
        pages = [0x0, 0x1000, 0x2000, 0x3000]
        for page in pages:
            tlb.insert(page)
        tlb.lookup(0x0)          # page 0 becomes MRU
        tlb.insert(0x4000)       # evicts page 0x1000 (the LRU)
        assert tlb.lookup(0x0)
        assert not tlb.lookup(0x1000)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            TLB(TLBConfig(entries=0))
        with pytest.raises(ValueError):
            TLB(TLBConfig(entries=10, associativity=4))

    def test_flush_clears_translations(self):
        tlb = TLB(TLBConfig(entries=16, associativity=4))
        tlb.insert(0x1000)
        tlb.flush()
        assert not tlb.lookup(0x1000)

    def test_miss_ratio(self):
        tlb = TLB(TLBConfig(entries=16, associativity=4))
        tlb.lookup(0x1000)
        tlb.insert(0x1000)
        tlb.lookup(0x1000)
        assert tlb.stats.miss_ratio == pytest.approx(0.5)


class TestHierarchy:
    def test_first_translation_walks(self):
        tlbs = TLBHierarchy(page_walk_latency=50)
        result = tlbs.translate(0x1000)
        assert result.page_walk
        assert result.latency >= 50
        assert tlbs.page_walks == 1

    def test_l1_hit_is_free(self):
        """The L1 TLB is accessed in parallel with the VIPT L1 cache."""
        tlbs = TLBHierarchy()
        tlbs.translate(0x1000)
        result = tlbs.translate(0x1000)
        assert result.l1_hit
        assert result.latency == 0

    def test_l2_hit_costs_l2_latency(self):
        tlbs = TLBHierarchy()
        # Fill enough distinct pages to push the first out of the 64-entry L1
        # TLB while keeping it in the much larger L2 TLB.
        for page in range(80):
            tlbs.translate(page * 4096)
        result = tlbs.translate(0)
        assert result.l2_hit and not result.l1_hit
        assert result.latency == tlbs.l2.config.access_latency

    def test_paper_configuration_defaults(self):
        tlbs = TLBHierarchy()
        assert tlbs.l1.config.entries == 64
        assert tlbs.l2.config.access_latency == 4

    def test_miss_ratio_and_reset(self):
        tlbs = TLBHierarchy()
        for page in range(10):
            tlbs.translate(page * 4096)
        assert 0.0 < tlbs.miss_ratio <= 1.0
        tlbs.reset_statistics()
        assert tlbs.page_walks == 0
        assert tlbs.l1.stats.accesses == 0
