"""Tests for the ``python -m repro`` experiment CLI.

Exercises the acceptance path end to end: running a figure grid populates
the store, re-running it performs zero simulations, ``--force`` recomputes,
``status``/``figures``/``clean`` behave, and the golden experiment's
metrics match the committed ``GOLDEN_stats.json`` bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import canonical_json, main, run_experiment
from repro.experiments import EXPERIMENTS, GOLDEN_SCALE, Scale
from repro.sim.store import ResultStore

REPO_ROOT = Path(__file__).resolve().parent.parent

#: A tiny scale so CLI tests stay fast (the golden grid ignores it anyway).
TINY = Scale(accesses=120, warmup=40, mix_accesses=80)


@pytest.fixture(autouse=True)
def _no_env_store(monkeypatch):
    """CLI tests must not pick up an ambient REPRO_STORE."""
    monkeypatch.delenv("REPRO_STORE", raising=False)


# ======================================================================
# run
# ======================================================================
class TestRun:
    def test_second_run_does_zero_simulations(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_experiment("fig13", store, TINY)
        assert first.simulated == first.total_jobs > 0
        assert first.stored == 0

        store = ResultStore(tmp_path)
        second = run_experiment("fig13", store, TINY)
        assert second.simulated == 0
        assert second.stored == second.total_jobs
        assert second.stats == first.stats

    def test_force_recomputes_every_job(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_experiment("fig13", store, TINY)
        forced = run_experiment("fig13", store, TINY, force=True)
        assert forced.simulated == forced.total_jobs
        assert forced.stats == first.stats

    def test_stats_file_is_written_canonically(self, tmp_path):
        store = ResultStore(tmp_path)
        report = run_experiment("fig13", store, TINY)
        assert report.stats_path == tmp_path / "stats" / "fig13.json"
        text = report.stats_path.read_text()
        assert text == canonical_json(report.stats)
        assert json.loads(text) == report.stats

    def test_experiments_share_stored_grid_cells(self, tmp_path):
        """Figures over the same grid cost nothing after the first run."""
        store = ResultStore(tmp_path)
        run_experiment("fig13", store, TINY)
        report = run_experiment("fig14", store, TINY)
        assert report.simulated == 0
        assert report.stored == report.total_jobs

    def test_main_run_reports_store_usage(self, tmp_path, capsys):
        args = ["run", "fig13", "--store", str(tmp_path),
                "--accesses", "120", "--warmup", "40",
                "--mix-accesses", "80"]
        assert main(args) == 0
        assert "0 from store" in capsys.readouterr().out
        assert main(args) == 0
        assert "0 simulated" in capsys.readouterr().out

    def test_main_rejects_unknown_experiment(self, tmp_path, capsys):
        code = main(["run", "nope", "--store", str(tmp_path)])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_main_rejects_stats_out_with_multiple_experiments(
            self, tmp_path, capsys):
        code = main(["run", "fig13", "fig14", "--store", str(tmp_path),
                     "--stats-out", str(tmp_path / "out.json")])
        assert code == 2
        assert "--stats-out" in capsys.readouterr().err
        assert not (tmp_path / "out.json").exists()

    def test_main_rejects_check_with_multiple_experiments(
            self, tmp_path, capsys):
        code = main(["run", "fig13", "golden", "--store", str(tmp_path),
                     "--check"])
        assert code == 2
        assert "--check" in capsys.readouterr().err


# ======================================================================
# golden
# ======================================================================
class TestGolden:
    def test_golden_ignores_cli_scale(self, tmp_path):
        report = run_experiment("golden", ResultStore(tmp_path), TINY)
        assert report.stats["scale"] == {
            "accesses": GOLDEN_SCALE.accesses,
            "warmup": GOLDEN_SCALE.warmup,
            "mix_accesses": GOLDEN_SCALE.mix_accesses,
        }

    def test_golden_matches_committed_stats_bit_for_bit(self, tmp_path):
        """The committed golden fingerprint is reproducible on this host.

        This is the in-repo half of the CI determinism job: any behavioural
        change to the simulator, the workload generators or the predictors
        shows up as a diff against GOLDEN_stats.json and must be committed
        deliberately (python -m repro run golden --stats-out
        GOLDEN_stats.json).
        """
        committed = json.loads(
            (REPO_ROOT / "GOLDEN_stats.json").read_text())
        report = run_experiment("golden", ResultStore(tmp_path), TINY)
        assert report.stats == committed

    def test_main_check_flag_passes_against_committed_stats(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code = main(["run", "golden", "--store", str(tmp_path), "--check"])
        assert code == 0
        assert "matches" in capsys.readouterr().out

    def test_main_check_flag_fails_on_mismatch(self, tmp_path, capsys):
        reference = tmp_path / "ref.json"
        reference.write_text('{"schema": "other"}\n')
        code = main(["run", "golden", "--store", str(tmp_path / "s"),
                     "--check", str(reference)])
        assert code == 1
        assert "differ" in capsys.readouterr().err


# ======================================================================
# status / figures / clean
# ======================================================================
class TestInspection:
    def test_figures_lists_every_experiment(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_status_tracks_store_coverage(self, tmp_path, capsys):
        args = ["--store", str(tmp_path), "--accesses", "120",
                "--warmup", "40", "--mix-accesses", "80"]
        assert main(["status"] + args) == 0
        assert "complete" not in capsys.readouterr().out

        run_experiment("fig13", ResultStore(tmp_path), TINY)
        assert main(["status"] + args) == 0
        out = capsys.readouterr().out
        assert any("fig13" in line and "complete" in line
                   for line in out.splitlines())

    def test_clean_removes_store_and_stats(self, tmp_path, capsys):
        run_experiment("fig13", ResultStore(tmp_path), TINY)
        assert (tmp_path / "shards").is_dir()
        assert main(["clean", "--store", str(tmp_path)]) == 0
        assert not (tmp_path / "shards").exists()
        assert not (tmp_path / "stats").exists()
        assert "removed" in capsys.readouterr().out


# ======================================================================
# store maintenance subcommand
# ======================================================================
class TestStoreCmd:
    def test_info_summarises_the_store(self, tmp_path, capsys):
        run_experiment("fig13", ResultStore(tmp_path), TINY)
        assert main(["store", "info", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for field in ("shards", "entries", "bytes", "index"):
            assert field in out

    def test_migrate_upgrades_a_legacy_store_in_place(self, tmp_path,
                                                      capsys):
        # Build a modern store, then refold its lines into the legacy
        # single-file layout to simulate a pre-sharding checkout.
        run_experiment("fig13", ResultStore(tmp_path / "seed"), TINY)
        legacy_root = tmp_path / "legacy"
        legacy_root.mkdir()
        lines = b"".join(
            path.read_bytes()
            for path in sorted((tmp_path / "seed" / "shards")
                               .glob("*.jsonl")))
        (legacy_root / "store.jsonl").write_bytes(lines)

        assert main(["store", "migrate", "--store", str(legacy_root)]) == 0
        assert "migrated" in capsys.readouterr().out
        assert not (legacy_root / "store.jsonl").exists()
        report = run_experiment("fig13", ResultStore(legacy_root), TINY)
        assert report.simulated == 0
        assert report.stored == report.total_jobs

        assert main(["store", "migrate", "--store", str(legacy_root)]) == 0
        assert "nothing to migrate" in capsys.readouterr().out

    def test_migrate_on_unwritable_media_reports_failure(
            self, tmp_path, capsys, monkeypatch):
        """migrate must not claim success when the legacy file is stuck."""
        import repro.sim.store as store_module

        run_experiment("fig13", ResultStore(tmp_path / "seed"), TINY)
        legacy_root = tmp_path / "legacy"
        legacy_root.mkdir()
        lines = b"".join(
            path.read_bytes()
            for path in sorted((tmp_path / "seed" / "shards")
                               .glob("*.jsonl")))
        (legacy_root / "store.jsonl").write_bytes(lines)

        def refuse(path, payload):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr(store_module, "_append_payload", refuse)
        assert main(["store", "migrate", "--store", str(legacy_root)]) == 1
        captured = capsys.readouterr()
        assert "could not migrate" in captured.err
        # info on the same store must stay coherent (no negative counts).
        assert main(["store", "info", "--store", str(legacy_root)]) == 0
        out = capsys.readouterr().out
        assert "unmigrated" in out and "-" not in out.split("entries")[1][:40]

    def test_fsck_salvages_and_signals_damage(self, tmp_path, capsys):
        run_experiment("fig13", ResultStore(tmp_path), TINY)
        shard = next(iter(sorted((tmp_path / "shards").glob("*.jsonl"))))
        with shard.open("ab") as handle:
            handle.write(b"garbage line\n")
        assert main(["store", "fsck", "--store", str(tmp_path)]) == 1
        assert "1 corrupt" in capsys.readouterr().out
        # Clean after salvage.
        assert main(["store", "fsck", "--store", str(tmp_path)]) == 0
        report = run_experiment("fig13", ResultStore(tmp_path), TINY)
        assert report.simulated == 0

    def test_compact_drops_superseded_entries(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        run_experiment("fig13", store, TINY)
        run_experiment("fig13", store, TINY, force=True)
        assert main(["store", "compact", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "superseded lines removed" in out
        report = run_experiment("fig13", ResultStore(tmp_path), TINY)
        assert report.simulated == 0


# ======================================================================
# serve (argument validation; daemon behaviour lives in test_service.py)
# ======================================================================
class TestServe:
    def test_serve_rejects_port_and_socket_together(self, tmp_path,
                                                    capsys):
        code = main(["serve", "--port", "0", "--socket",
                     str(tmp_path / "s.sock"), "--store", str(tmp_path)])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_serve_help_documents_the_daemon(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--port", "--socket", "--jobs", "--ready-file"):
            assert flag in out


# ======================================================================
# the sweep experiment (store scale-out grid)
# ======================================================================
class TestSweep:
    def test_sweep_is_opt_in_not_part_of_all(self):
        from repro.cli import _resolve_targets

        assert "sweep" not in _resolve_targets([])
        assert "sweep" not in _resolve_targets(["all"])
        assert "sweep" in _resolve_targets(["all", "sweep"])
        assert _resolve_targets(["sweep"]) == ["sweep"]

    def test_sweep_is_several_times_the_paper_grid(self):
        from repro.sim.store import try_job_key

        sweep_jobs = EXPERIMENTS["sweep"].jobs(TINY)
        paper_grid = EXPERIMENTS["fig11"].jobs(TINY)
        assert len(sweep_jobs) >= 3 * len(paper_grid)
        keys = [try_job_key(job) for job in sweep_jobs]
        assert None not in keys
        assert len(set(keys)) == len(keys)  # every cell is distinct

    @pytest.mark.slow
    def test_sweep_summary_reports_seed_spread(self, tmp_path):
        scale = Scale(accesses=40, warmup=10, mix_accesses=30)
        report = run_experiment("sweep", ResultStore(tmp_path), scale)
        assert report.total_jobs == report.simulated
        stats = report.stats
        assert stats["jobs"] == report.total_jobs
        seeds = [str(seed) for seed in stats["seeds"]]
        assert len(seeds) >= 3
        for seed in seeds:
            assert stats["single_core_geomean_speedup"][seed]["lp"] > 0
            assert stats["mix_lp_geomean_speedup"][seed] > 0
        spread = stats["lp_seed_spread"]
        assert spread["min"] <= spread["mean"] <= spread["max"]
        # The store now holds a grid several times the paper's largest.
        store = ResultStore(tmp_path)
        assert len(store) == report.total_jobs
        assert len(list((tmp_path / "shards").glob("*.jsonl"))) > 10


# ======================================================================
# trace
# ======================================================================
class TestTrace:
    def test_trace_reports_footprint_and_mix(self, capsys):
        assert main(["trace", "gapbs.pr", "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "gapbs.pr" in out
        for field in ("accesses", "loads / stores", "unique blocks",
                      "unique pages", "footprint", "buffer size"):
            assert field in out

    def test_trace_save_round_trips(self, tmp_path, capsys):
        from repro.trace import TraceBuffer
        from repro.workloads import build_workload

        path = tmp_path / "stream.npz"
        assert main(["trace", "stream", "--accesses", "500", "--seed", "3",
                     "--save", str(path)]) == 0
        assert "buffer written to" in capsys.readouterr().out
        loaded = TraceBuffer.load(path)
        assert loaded == build_workload("stream").generate(500, seed=3)

    def test_trace_rejects_unknown_workload(self, capsys):
        assert main(["trace", "notaworkload"]) == 2
        assert "unknown workload" in capsys.readouterr().err


# ======================================================================
# trace cache (cold vs warm runs)
# ======================================================================
class TestTraceCacheRuns:
    @pytest.fixture(autouse=True)
    def _cold_trace_cache(self):
        """Spilling happens on in-memory misses, so start from a cold cache
        (earlier tests in this process may have warmed the global one)."""
        from repro.sim.engine import TRACE_CACHE

        TRACE_CACHE.clear()
        yield
        TRACE_CACHE.clear()

    def test_run_spills_traces_under_store(self, tmp_path):
        args = ["run", "fig13", "--store", str(tmp_path),
                "--accesses", "120", "--warmup", "40",
                "--mix-accesses", "80"]
        assert main(args) == 0
        assert list((tmp_path / "traces").glob("*.npz"))

    def test_warm_run_from_spilled_traces_is_byte_identical(self, tmp_path):
        cold_store = tmp_path / "cold"
        warm_store = tmp_path / "warm"
        scale = ["--accesses", "120", "--warmup", "40",
                 "--mix-accesses", "80"]
        assert main(["run", "fig13", "--store", str(cold_store)]
                    + scale) == 0
        # Drop the in-memory cache so the warm run must load from disk.
        from repro.sim.engine import TRACE_CACHE

        TRACE_CACHE.clear()
        assert main(["run", "fig13", "--store", str(warm_store),
                     "--trace-dir", str(cold_store / "traces")] + scale) == 0
        assert TRACE_CACHE.disk_hits > 0
        cold_shards = {path.name: path.read_bytes()
                       for path in sorted((cold_store / "shards")
                                          .glob("*.jsonl"))}
        warm_shards = {path.name: path.read_bytes()
                       for path in sorted((warm_store / "shards")
                                          .glob("*.jsonl"))}
        assert cold_shards and cold_shards == warm_shards
        # The warm run generated nothing new: no fresh spills appeared.
        cold_traces = sorted((cold_store / "traces").glob("*.npz"))
        assert not (warm_store / "traces").exists()
        assert cold_traces

    def test_empty_trace_dir_disables_spilling(self, tmp_path):
        args = ["run", "fig13", "--store", str(tmp_path),
                "--trace-dir", "", "--accesses", "120", "--warmup", "40",
                "--mix-accesses", "80"]
        assert main(args) == 0
        assert not (tmp_path / "traces").exists()
