"""Unit tests for the out-of-order core timing model."""

from __future__ import annotations

import pytest

from repro.cpu.ooo_core import (
    CoreConfig,
    ExecutionResult,
    OutOfOrderCore,
    geometric_mean,
)
from repro.memory.block import AccessResult, Level, MemoryAccess


def load(address: int, dependent: bool = False, non_mem: int = 4) -> MemoryAccess:
    return MemoryAccess(address=address, depends_on_previous=dependent,
                        non_memory_instructions=non_mem)


def result(latency: float, level: Level = Level.L1) -> AccessResult:
    return AccessResult(hit_level=level, latency=latency)


class TestConfig:
    def test_paper_baseline(self):
        config = CoreConfig.paper_baseline()
        assert config.fetch_width == 4
        assert config.rob_entries == 192
        assert config.load_queue_entries == 32

    def test_aggressive_variant(self):
        config = CoreConfig.aggressive()
        assert config.rob_entries == 224
        assert config.load_queue_entries == 96

    def test_mlp_limit_bounded_by_lsq_and_rob(self):
        core = OutOfOrderCore(CoreConfig(rob_entries=64, load_queue_entries=32))
        assert core.mlp_limit(average_instructions_per_access=4.0) == 16
        assert core.mlp_limit(average_instructions_per_access=1.0) == 32


class TestExecution:
    def test_empty_trace(self):
        execution = OutOfOrderCore().execute([], [])
        assert execution.cycles == 0.0
        assert execution.ipc == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            OutOfOrderCore().execute([load(0)], [])

    def test_all_hits_bounded_by_fetch_width(self):
        core = OutOfOrderCore()
        trace = [load(i * 64, non_mem=4) for i in range(100)]
        results = [result(4.0) for _ in trace]
        execution = core.execute(trace, results)
        # 5 instructions per access at width 4 -> at least 1.25 cycles/access.
        assert execution.cycles >= 100 * 1.25 * 0.99
        assert 0 < execution.ipc <= 4.0

    def test_independent_misses_overlap(self):
        """Independent long-latency loads must overlap (MLP)."""
        core = OutOfOrderCore()
        trace = [load(i * 64, non_mem=2) for i in range(64)]
        results = [result(200.0, Level.MEM) for _ in trace]
        execution = core.execute(trace, results)
        serialized = 64 * 200.0
        assert execution.cycles < serialized / 4

    def test_dependent_misses_serialize(self):
        """Pointer-chasing loads expose their full latency."""
        core = OutOfOrderCore()
        independent = [load(i * 64, dependent=False) for i in range(64)]
        dependent = [load(i * 64, dependent=True) for i in range(64)]
        results = [result(200.0, Level.MEM) for _ in range(64)]
        t_indep = core.execute(independent, results).cycles
        t_dep = core.execute(dependent, results).cycles
        assert t_dep > 2 * t_indep

    def test_window_limits_overlap(self):
        """A small load queue exposes more latency than a large one."""
        small = OutOfOrderCore(CoreConfig(load_queue_entries=4))
        large = OutOfOrderCore(CoreConfig(load_queue_entries=64,
                                          rob_entries=512))
        trace = [load(i * 64, non_mem=1) for i in range(128)]
        results = [result(300.0, Level.MEM) for _ in trace]
        assert small.execute(trace, results).cycles \
            > large.execute(trace, results).cycles

    def test_lower_latency_gives_higher_ipc(self):
        """The property Figure 11 relies on: faster loads -> higher IPC."""
        core = OutOfOrderCore()
        trace = [load(i * 64, dependent=i % 3 == 0) for i in range(200)]
        slow = [result(250.0, Level.MEM) for _ in trace]
        fast = [result(200.0, Level.MEM) for _ in trace]
        slow_run = core.execute(trace, slow)
        fast_run = core.execute(trace, fast)
        assert fast_run.ipc > slow_run.ipc
        assert fast_run.speedup_over(slow_run) > 1.0

    def test_stall_cycles_reported(self):
        core = OutOfOrderCore()
        trace = [load(i * 64, dependent=True) for i in range(32)]
        results = [result(100.0, Level.MEM) for _ in trace]
        execution = core.execute(trace, results)
        assert execution.stall_cycles > 0
        assert execution.memory_accesses == 32


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_and_nonpositive(self):
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, -1.0]) == 0.0

    def test_single_value(self):
        assert geometric_mean([1.078]) == pytest.approx(1.078)
