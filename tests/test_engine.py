"""Tests for the batched/parallel simulation engine (repro.sim.engine)."""

from __future__ import annotations

import pickle

import pytest

from repro.sim.config import SystemConfig
from repro.sim.engine import (
    MixJob,
    SimulationEngine,
    SimulationJob,
    TraceCache,
    execute_job,
    execute_shard,
    expand_grid,
    merge_shard_results,
    mix_traces,
    plan_shard_tasks,
)
from repro.sim.options import EngineOptions
from repro.sim.store import ResultStore, job_spec, spec_key
from repro.sim.system import SimulatedSystem, run_predictor_comparison
from repro.trace import TraceBuffer
from repro.workloads import build_workload

APPS = ["gapbs.bfs", "605.mcf", "stream"]
SYSTEMS = ("baseline", "lp", "ideal")


def assert_results_identical(first, second):
    """Two SimulationResults must agree bit-for-bit on every reported metric."""
    assert first.workload == second.workload
    assert first.predictor == second.predictor
    assert first.execution.cycles == second.execution.cycles
    assert first.execution.instructions == second.execution.instructions
    assert first.ipc == second.ipc
    assert first.cache_hierarchy_energy_nj == second.cache_hierarchy_energy_nj
    assert first.energy_breakdown == second.energy_breakdown
    for field in ("demand_accesses", "l1_hits", "l2_hits", "l3_hits",
                  "memory_accesses", "total_demand_latency", "miss_latency",
                  "predictions", "recoveries"):
        assert getattr(first.hierarchy_stats, field) == \
            getattr(second.hierarchy_stats, field), field
    assert first.predictor_stats.predictions == \
        second.predictor_stats.predictions
    assert first.predictor_stats.outcomes == second.predictor_stats.outcomes
    assert first.metadata_miss_ratio == second.metadata_miss_ratio


class TestTraceCache:
    def test_repeated_key_returns_identical_object(self):
        cache = TraceCache()
        first = cache.get("gapbs.bfs", 400, seed=3)
        second = cache.get("gapbs.bfs", 400, seed=3)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_keys_generate_distinct_traces(self):
        cache = TraceCache()
        base = cache.get("stream", 300, seed=0)
        assert cache.get("stream", 300, seed=1) is not base
        assert cache.get("stream", 301, seed=0) is not base
        assert cache.get("stream", 300, seed=0, base_address=1 << 36) is not base
        assert cache.misses == 4

    def test_workload_objects_cached_by_identity(self):
        cache = TraceCache()
        workload = build_workload("gups")
        twin = build_workload("gups")
        first = cache.get(workload, 200)
        assert cache.get(workload, 200) is first
        # A different object is a different key even with the same name.
        assert cache.get(twin, 200) is not first

    def test_named_trace_matches_direct_generation(self):
        cache = TraceCache()
        cached = cache.get("gapbs.bfs", 250, seed=7)
        direct = build_workload("gapbs.bfs").generate(250, seed=7)
        # The cache serves columnar buffers whose columns equal the legacy
        # record stream field-for-field.
        assert isinstance(cached, TraceBuffer)
        assert cached == direct

    def test_lru_bound(self):
        cache = TraceCache(max_traces=2)
        cache.get("stream", 100, seed=0)
        cache.get("stream", 100, seed=1)
        cache.get("stream", 100, seed=2)
        assert len(cache) == 2


class TestEngineConfiguration:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert SimulationEngine().num_workers == 1
        assert not SimulationEngine().parallel

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert SimulationEngine().num_workers == 3
        assert SimulationEngine(jobs=2).num_workers == 2

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            SimulationEngine()

    def test_custom_trace_cache_is_used(self):
        # Regression: an *empty* TraceCache is falsy (len() == 0), so a
        # `trace_cache or TRACE_CACHE` default would silently ignore it.
        cache = TraceCache()
        engine = SimulationEngine(jobs=1, trace_cache=cache)
        engine.run(expand_grid(["stream"], ("baseline", "lp"),
                               num_accesses=200))
        assert cache.misses == 1
        assert cache.hits == 1

    def test_expand_grid_shape_and_order(self):
        jobs = expand_grid(APPS, SYSTEMS, num_accesses=100,
                           warmup_accesses=10, seeds=(0, 1))
        assert len(jobs) == len(APPS) * len(SYSTEMS) * 2
        # Workload-major, then seed, then predictor.
        assert jobs[0].workload == APPS[0]
        assert jobs[0].predictor == SYSTEMS[0]
        assert jobs[1].predictor == SYSTEMS[1]
        assert jobs[len(SYSTEMS)].seed == 1


class TestSerialParallelEquivalence:
    def test_single_core_grid_bit_identical(self):
        jobs = expand_grid(APPS, SYSTEMS, num_accesses=400,
                           warmup_accesses=100)
        serial = SimulationEngine(jobs=1).run(jobs)
        parallel = SimulationEngine(jobs=2).run(jobs)
        assert len(serial) == len(parallel) == len(jobs)
        for first, second in zip(serial, parallel):
            assert_results_identical(first, second)

    def test_mix_jobs_bit_identical(self):
        jobs = [MixJob(mix=mix, predictor=predictor, accesses_per_core=200)
                for mix in ("mix1", "MT1") for predictor in ("baseline", "lp")]
        serial = SimulationEngine(jobs=1).run(jobs)
        parallel = SimulationEngine(jobs=2).run(jobs)
        for first, second in zip(serial, parallel):
            assert first.mix == second.mix
            assert first.predictor == second.predictor
            assert first.aggregate_ipc == second.aggregate_ipc
            assert first.cache_hierarchy_energy_nj == \
                second.cache_hierarchy_energy_nj
            assert first.accuracy_breakdown == second.accuracy_breakdown

    def test_engine_matches_direct_driver(self):
        """execute_job reproduces SimulatedSystem.run_workload exactly."""
        workload = build_workload("gapbs.bfs")
        direct = SimulatedSystem(
            SystemConfig.paper_single_core("lp")).run_workload(
            workload, 400, seed=0, warmup_accesses=100)
        via_engine = execute_job(SimulationJob(
            workload="gapbs.bfs", predictor="lp", num_accesses=400,
            warmup_accesses=100, seed=0))
        assert_results_identical(direct, via_engine)


class TestTraceSharding:
    """Within-job trace sharding: exact hand-off and approx merge."""

    JOB = SimulationJob(workload="gapbs.bfs", predictor="lp",
                        num_accesses=400, warmup_accesses=100, seed=0)

    def test_exact_sharded_job_is_byte_identical(self):
        unsharded = execute_job(self.JOB)
        for shards in (2, 4, 7):
            sharded = execute_job(self.JOB, shards=shards)
            assert pickle.dumps(sharded) == pickle.dumps(unsharded)

    def test_exact_sharded_engine_grid_is_byte_identical(self):
        jobs = expand_grid(APPS, ("baseline", "lp"), num_accesses=300,
                           warmup_accesses=60)
        baseline = SimulationEngine(jobs=1).run(jobs)
        sharded = SimulationEngine(
            options=EngineOptions(shards=4)).run(jobs)
        for first, second in zip(baseline, sharded):
            assert pickle.dumps(first) == pickle.dumps(second)

    def test_approx_mode_is_deterministic_across_schedules(self):
        jobs = expand_grid(APPS[:2], ("lp",), num_accesses=400,
                           warmup_accesses=100)
        serial = SimulationEngine(options=EngineOptions(
            shards=4, sharding="approx")).run(jobs)
        pooled = SimulationEngine(options=EngineOptions(
            jobs=2, shards=4, sharding="approx")).run(jobs)
        for first, second in zip(serial, pooled):
            assert_results_identical(first, second)

    def test_approx_merge_preserves_count_fields(self):
        exact = execute_job(self.JOB)
        engine = SimulationEngine(options=EngineOptions(
            shards=4, sharding="approx"))
        merged = engine.run([self.JOB])[0]
        # Row counters merge losslessly (the spans partition the trace);
        # latency-derived metrics carry the documented bounded delta.
        assert merged.execution.instructions == exact.execution.instructions
        assert merged.execution.memory_accesses == \
            exact.execution.memory_accesses
        assert merged.hierarchy_stats.demand_accesses == \
            exact.hierarchy_stats.demand_accesses
        assert merged.hierarchy_stats.loads == exact.hierarchy_stats.loads
        assert engine.shards_executed == 4
        assert engine.shard_merges == 1

    def test_approx_mode_never_touches_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        engine = SimulationEngine(store=store, options=EngineOptions(
            shards=4, sharding="approx"))
        results = engine.run([self.JOB])
        assert len(results) == 1
        # Not even a read-through: the run left every counter at zero.
        assert store.puts == 0 and store.misses == 0 and store.unkeyed == 0
        assert store.get(spec_key(job_spec(self.JOB))) is None

    def test_plan_shard_tasks_degenerate_cases(self):
        assert plan_shard_tasks(self.JOB, 1) is None
        mix = MixJob(mix="mix1", predictor="lp", accesses_per_core=200)
        assert plan_shard_tasks(mix, 4) is None
        tiny = SimulationJob(workload="stream", predictor="lp",
                             num_accesses=1, warmup_accesses=100)
        assert plan_shard_tasks(tiny, 4) is None  # one measured row

    def test_execute_shard_matches_plan_geometry(self):
        tasks = plan_shard_tasks(self.JOB, 3)
        assert [t.index for t in tasks] == [0, 1, 2]
        assert tasks[0].warmup == self.JOB.warmup_accesses
        partials = [execute_shard(task) for task in tasks]
        merged = merge_shard_results(partials)
        total = sum(p.hierarchy_stats.demand_accesses for p in partials)
        # The measured spans partition the job's 400 measured accesses.
        assert merged.hierarchy_stats.demand_accesses == total == 400

    def test_merge_rejects_empty_input(self):
        with pytest.raises(ValueError):
            merge_shard_results([])


class TestGridHelpers:
    def test_run_grid_shape(self):
        grid = SimulationEngine(jobs=1).run_grid(
            APPS[:2], ("baseline", "lp"), num_accesses=200)
        assert sorted(grid) == sorted(APPS[:2])
        for app, per_system in grid.items():
            assert set(per_system) == {"baseline", "lp"}
            for predictor, result in per_system.items():
                assert result.predictor_stats.predictions >= 0
                assert result.workload == app

    def test_run_predictor_comparison_uses_shared_trace(self):
        """The public comparison driver returns per-predictor results whose
        traces came from one generation (identical access streams)."""
        workload = build_workload("hpcg")
        results = run_predictor_comparison(workload, 300,
                                           predictors=("baseline", "lp"))
        base = results["baseline"].hierarchy_stats
        lp = results["lp"].hierarchy_stats
        assert base.demand_accesses == lp.demand_accesses == 300
        assert base.loads == lp.loads

    def test_mix_traces_cached(self):
        cache = TraceCache()
        first, names = mix_traces("mix1", 150, trace_cache=cache)
        second, _ = mix_traces("mix1", 150, trace_cache=cache)
        assert names == ["gapbs.bfs", "619.lbm", "nas.lu", "bmt"]
        for a, b in zip(first, second):
            assert a is b
