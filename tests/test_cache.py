"""Unit and property tests for the set-associative cache model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.block import AccessType, CoherenceState, Level
from repro.memory.cache import Cache, CacheConfig


def make_cache(size=1024, assoc=2, level=Level.L1, **kwargs) -> Cache:
    return Cache(CacheConfig(level=level, size_bytes=size, associativity=assoc,
                             **kwargs))


class TestGeometry:
    def test_num_sets(self):
        config = CacheConfig(level=Level.L1, size_bytes=32 * 1024,
                             associativity=4)
        assert config.num_sets == 128

    def test_invalid_geometry_raises(self):
        config = CacheConfig(level=Level.L1, size_bytes=64, associativity=4)
        with pytest.raises(ValueError):
            _ = config.num_sets

    def test_hit_latency_parallel_vs_sequential(self):
        parallel = CacheConfig(level=Level.L2, size_bytes=1024, associativity=2,
                               tag_latency=12, data_latency=0)
        sequential = CacheConfig(level=Level.L3, size_bytes=1024, associativity=2,
                                 tag_latency=20, data_latency=35,
                                 sequential_tag_data=True)
        assert parallel.hit_latency == 12
        assert sequential.hit_latency == 55
        assert sequential.miss_detect_latency == 20

    def test_set_index_and_tag_roundtrip(self):
        cache = make_cache(size=1024, assoc=2)
        for block in (0, 64, 512, 4096, 65536):
            set_index = cache.set_index(block)
            assert 0 <= set_index < cache.config.num_sets


class TestLookupAndFill:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(0x1000)
        cache.fill(0x1000)
        assert cache.lookup(0x1000)
        assert cache.stats.demand_hits == 1
        assert cache.stats.demand_misses == 1

    def test_sub_block_addresses_share_a_line(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.lookup(0x1010)
        assert cache.lookup(0x103F)
        assert not cache.lookup(0x1040)

    def test_store_hit_marks_dirty(self):
        cache = make_cache()
        cache.fill(0x2000)
        cache.lookup(0x2000, AccessType.STORE)
        line = cache.get_line(0x2000)
        assert line.dirty
        assert line.state is CoherenceState.MODIFIED

    def test_fill_of_resident_block_does_not_evict(self):
        cache = make_cache()
        cache.fill(0x40)
        assert cache.fill(0x40) is None
        assert cache.occupancy() == 1

    def test_eviction_when_set_full(self):
        # 1 KiB, 2-way, 64 B lines -> 8 sets; addresses 0, 512, 1024 map to set 0.
        cache = make_cache(size=1024, assoc=2)
        cache.fill(0)
        cache.fill(512)
        eviction = cache.fill(1024)
        assert eviction is not None
        assert eviction.block_addr == 0  # LRU victim
        assert not cache.contains(0)
        assert cache.contains(512) and cache.contains(1024)

    def test_dirty_eviction_reported(self):
        cache = make_cache(size=1024, assoc=2)
        cache.fill(0, dirty=True)
        cache.fill(512)
        eviction = cache.fill(1024)
        assert eviction.dirty
        assert cache.stats.dirty_evictions == 1


class TestPrefetchTracking:
    def test_prefetched_line_marked_and_cleared_on_use(self):
        cache = make_cache()
        cache.fill(0x80, access_type=AccessType.PREFETCH)
        assert cache.get_line(0x80).prefetched
        cache.lookup(0x80)
        assert not cache.get_line(0x80).prefetched
        assert cache.stats.prefetched_lines_used == 1

    def test_unused_prefetch_eviction_counted(self):
        cache = make_cache(size=1024, assoc=2)
        cache.fill(0, access_type=AccessType.PREFETCH)
        cache.fill(512)
        eviction = cache.fill(1024)
        assert eviction.prefetched_unused
        assert cache.stats.prefetched_lines_evicted_unused == 1

    def test_prefetch_lookup_counted_separately(self):
        cache = make_cache()
        cache.lookup(0x40, AccessType.PREFETCH)
        assert cache.stats.prefetch_misses == 1
        assert cache.stats.demand_misses == 0


class TestInvalidate:
    def test_invalidate_removes_block(self):
        cache = make_cache()
        cache.fill(0x100)
        info = cache.invalidate(0x100)
        assert info is not None
        assert not cache.contains(0x100)
        assert cache.stats.invalidations == 1

    def test_invalidate_absent_block_is_noop(self):
        cache = make_cache()
        assert cache.invalidate(0x100) is None

    def test_mark_dirty(self):
        cache = make_cache()
        cache.fill(0x100)
        assert cache.mark_dirty(0x100)
        assert cache.get_line(0x100).dirty
        assert not cache.mark_dirty(0x5000)


class TestCapacityInvariants:
    def test_occupancy_never_exceeds_capacity(self):
        cache = make_cache(size=1024, assoc=2)
        for i in range(100):
            cache.fill(i * 64)
        assert cache.occupancy() <= cache.capacity_blocks

    def test_resident_blocks_are_block_aligned(self):
        cache = make_cache()
        cache.fill(0x1234)
        assert cache.resident_blocks() == [0x1200]

    def test_reset_statistics(self):
        cache = make_cache()
        cache.lookup(0)
        cache.fill(0)
        cache.reset_statistics()
        assert cache.stats.accesses == 0
        assert cache.stats.fills == 0


@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20),
                          min_size=1, max_size=400))
@settings(max_examples=50, deadline=None)
def test_property_contains_matches_fill_history(addresses):
    """After any fill sequence, a filled block is either resident or was
    evicted; occupancy never exceeds capacity; lookups after fill of the same
    address always hit."""
    cache = make_cache(size=2048, assoc=4)
    for address in addresses:
        cache.fill(address)
        assert cache.lookup(address)  # just-filled blocks always hit
        assert cache.occupancy() <= cache.capacity_blocks


@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 16),
                          min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_property_tag_index_consistency(addresses):
    """The internal tag->way index always agrees with the stored lines."""
    cache = make_cache(size=1024, assoc=2)
    for address in addresses:
        cache.fill(address)
    for block in cache.resident_blocks():
        assert cache.contains(block)
        line = cache.get_line(block)
        assert line.block_addr == block
