"""Unit tests for the energy model and accounting."""

from __future__ import annotations

import pytest

from repro.energy import EnergyAccount, EnergyParameters, normalized_energy
from repro.memory.block import Level


class TestParameters:
    def test_relative_ordering_of_structures(self):
        """The CACTI-style ordering the paper's energy results depend on."""
        params = EnergyParameters()
        assert params.l1_access_nj < params.l2_access_nj
        assert params.l2_access_nj < params.cache_access_energy(Level.L3)
        assert params.cache_access_energy(Level.L3) < params.dram_access_nj
        assert params.sram_access_energy(2048) < params.l2_access_nj

    def test_sram_scaling_is_monotone(self):
        params = EnergyParameters()
        assert params.sram_access_energy(1024) < params.sram_access_energy(2048)
        assert params.sram_access_energy(2048) < params.sram_access_energy(8192)
        assert params.sram_access_energy(0) == 0.0

    def test_llc_tag_only_cheaper_than_full_access(self):
        params = EnergyParameters()
        assert params.cache_access_energy(Level.L3, tag_only=True) \
            < params.cache_access_energy(Level.L3)


class TestAccount:
    def test_charging_accumulates_by_category(self):
        account = EnergyAccount()
        account.charge("hierarchy", 1.0)
        account.charge("hierarchy", 2.0)
        account.charge("predictor", 0.5)
        assert account.by_category["hierarchy"] == pytest.approx(3.0)
        assert account.total == pytest.approx(3.5)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            EnergyAccount().charge("hierarchy", -1.0)

    def test_cache_hierarchy_energy_excludes_dram(self):
        account = EnergyAccount()
        account.charge_cache_lookup(Level.L2)
        account.charge_cache_lookup(Level.MEM)
        assert account.cache_hierarchy_energy() < account.total
        assert "dram" in account.by_category

    def test_helper_charges(self):
        account = EnergyAccount()
        account.charge_directory()
        account.charge_predictor(0.01)
        account.charge_recovery(0.02)
        account.charge_bus()
        breakdown = account.breakdown()
        assert set(breakdown) == {"hierarchy", "predictor", "recovery"}

    def test_reset(self):
        account = EnergyAccount()
        account.charge("hierarchy", 1.0)
        account.reset()
        assert account.total == 0.0


class TestNormalization:
    def test_normalized_energy(self):
        baseline = EnergyAccount()
        baseline.charge("hierarchy", 10.0)
        other = EnergyAccount()
        other.charge("hierarchy", 8.0)
        other.charge("predictor", 1.0)
        assert normalized_energy(other, baseline) == pytest.approx(0.9)

    def test_zero_baseline(self):
        assert normalized_energy(EnergyAccount(), EnergyAccount()) == 1.0
