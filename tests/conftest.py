"""Shared pytest fixtures for the reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.memory.cache import Cache, CacheConfig
from repro.memory.block import Level
from repro.memory.hierarchy import CoreMemoryHierarchy, HierarchyConfig
from repro.sim.config import SystemConfig
from repro.sim.system import SimulatedSystem

from trace_helpers import make_load, make_store  # noqa: F401  (re-export)


@pytest.fixture
def small_cache() -> Cache:
    """A tiny 8-set, 2-way cache for unit tests (1 KiB)."""
    return Cache(CacheConfig(level=Level.L1, size_bytes=1024, associativity=2,
                             tag_latency=4))


@pytest.fixture
def small_hierarchy_config() -> HierarchyConfig:
    """A scaled-down hierarchy so working sets overflow quickly in tests."""
    config = HierarchyConfig.paper_single_core()
    config.l1 = CacheConfig(level=Level.L1, size_bytes=4 * 1024,
                            associativity=4, tag_latency=4)
    config.l2 = CacheConfig(level=Level.L2, size_bytes=16 * 1024,
                            associativity=8, tag_latency=12)
    config.l3 = CacheConfig(level=Level.L3, size_bytes=64 * 1024,
                            associativity=16, tag_latency=20, data_latency=35,
                            sequential_tag_data=True)
    return config


@pytest.fixture
def baseline_hierarchy(small_hierarchy_config) -> CoreMemoryHierarchy:
    """A small hierarchy with the sequential (baseline) predictor."""
    return CoreMemoryHierarchy(config=small_hierarchy_config)


@pytest.fixture
def lp_system() -> SimulatedSystem:
    """A full paper-configuration system with the proposed level predictor."""
    return SimulatedSystem(SystemConfig.paper_single_core("lp"))


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)
