"""Unit tests for the MSHR file (non-blocking miss tracking + reservation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.block import AccessType
from repro.memory.mshr import MSHRFile


class TestAllocation:
    def test_allocate_and_lookup(self):
        mshrs = MSHRFile(capacity=4)
        entry = mshrs.allocate(0x1000)
        assert entry is not None
        assert mshrs.lookup(0x1000) is entry
        assert mshrs.occupancy == 1

    def test_coalescing_same_block(self):
        mshrs = MSHRFile(capacity=2)
        first = mshrs.allocate(0x40)
        second = mshrs.allocate(0x40)
        assert first is second
        assert mshrs.occupancy == 1
        assert mshrs.coalesces == 1

    def test_capacity_limit_rejects_demand(self):
        mshrs = MSHRFile(capacity=2)
        assert mshrs.allocate(0x0) is not None
        assert mshrs.allocate(0x40) is not None
        assert mshrs.allocate(0x80) is None
        assert mshrs.demand_rejections == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(capacity=0)
        with pytest.raises(ValueError):
            MSHRFile(capacity=4, demand_reserve_fraction=1.0)


class TestDemandReservation:
    def test_prefetch_blocked_by_reservation(self):
        """25 % of entries are reserved for demand accesses (Section IV.A)."""
        mshrs = MSHRFile(capacity=4, demand_reserve_fraction=0.25)
        assert mshrs.prefetch_limit == 3
        for i in range(3):
            assert mshrs.allocate(i * 64, AccessType.PREFETCH) is not None
        # The fourth entry is reserved: prefetch rejected, demand accepted.
        assert mshrs.allocate(0x1000, AccessType.PREFETCH) is None
        assert mshrs.prefetch_rejections == 1
        assert mshrs.allocate(0x1000, AccessType.LOAD) is not None

    def test_has_room_for(self):
        mshrs = MSHRFile(capacity=4, demand_reserve_fraction=0.25)
        for i in range(3):
            mshrs.allocate(i * 64)
        assert not mshrs.has_room_for(AccessType.PREFETCH)
        assert mshrs.has_room_for(AccessType.LOAD)


class TestRelease:
    def test_release_returns_presence(self):
        mshrs = MSHRFile(capacity=2)
        mshrs.allocate(0x40)
        assert mshrs.release(0x40) is True
        assert mshrs.release(0x40) is False
        assert mshrs.occupancy == 0

    def test_force_release_counts_recovery_deallocations(self):
        mshrs = MSHRFile(capacity=2)
        mshrs.allocate(0x40)
        assert mshrs.force_release(0x40) is True
        assert mshrs.forced_deallocations == 1
        # Releasing an entry the request never allocated is not an error.
        assert mshrs.force_release(0x80) is False
        assert mshrs.forced_deallocations == 1

    def test_outstanding_blocks(self):
        mshrs = MSHRFile(capacity=4)
        mshrs.allocate(0x0)
        mshrs.allocate(0x40)
        assert sorted(mshrs.outstanding_blocks()) == [0x0, 0x40]

    def test_reset_statistics_preserves_entries(self):
        mshrs = MSHRFile(capacity=4)
        mshrs.allocate(0x0)
        mshrs.reset_statistics()
        assert mshrs.allocations == 0
        assert mshrs.occupancy == 1


@given(ops=st.lists(
    st.tuples(st.sampled_from(["alloc", "release"]),
              st.integers(min_value=0, max_value=7)),
    max_size=300))
@settings(max_examples=60, deadline=None)
def test_property_occupancy_never_exceeds_capacity(ops):
    """Occupancy stays within [0, capacity] for any allocate/release pattern."""
    mshrs = MSHRFile(capacity=4, demand_reserve_fraction=0.25)
    for op, block in ops:
        if op == "alloc":
            mshrs.allocate(block * 64)
        else:
            mshrs.release(block * 64)
        assert 0 <= mshrs.occupancy <= 4
