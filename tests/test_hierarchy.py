"""Integration tests for the memory hierarchy (baseline and level-predicted)."""

from __future__ import annotations

import pytest

from repro.core.base import SequentialPredictor
from repro.core.d2d import DirectToDataPredictor
from repro.core.level_predictor import CacheLevelPredictor
from repro.memory.block import AccessType, Level, MemoryAccess
from repro.memory.hierarchy import (
    CoreMemoryHierarchy,
    HierarchyConfig,
    SharedMemorySystem,
)
from repro.prefetch.nextline import TaggedNextLinePrefetcher

from trace_helpers import make_load, make_store


def build_hierarchy(config=None, predictor=None, **kwargs) -> CoreMemoryHierarchy:
    config = config or HierarchyConfig.paper_single_core()
    shared = SharedMemorySystem(config, num_cores=1)
    return CoreMemoryHierarchy(config=config, shared=shared,
                               predictor=predictor, **kwargs)


class TestBaselineLatencies:
    """The sequential lookup path must follow the Table I latencies."""

    def test_cold_miss_goes_to_memory(self):
        hierarchy = build_hierarchy()
        result = hierarchy.access(make_load(0x10000))
        assert result.hit_level is Level.MEM
        assert result.latency > 100

    def test_l1_hit_latency(self):
        hierarchy = build_hierarchy()
        hierarchy.access(make_load(0x10000))
        result = hierarchy.access(make_load(0x10000))
        assert result.hit_level is Level.L1
        assert result.latency == pytest.approx(hierarchy.config.l1.hit_latency)

    def test_l2_hit_after_l1_eviction(self):
        config = HierarchyConfig.paper_single_core()
        hierarchy = build_hierarchy(config)
        hierarchy.access(make_load(0x10000))
        # Evict 0x10000 from the (4 KiB-per-set... ) L1 by filling its set.
        # L1 is 32 KiB 4-way: addresses 8 KiB apart share a set.
        for i in range(1, 6):
            hierarchy.access(make_load(0x10000 + i * 8 * 1024))
        result = hierarchy.access(make_load(0x10000))
        assert result.hit_level is Level.L2
        # Latency: L1 tag + hop + L2 hit.
        assert result.latency < 40

    def test_memory_latency_exceeds_llc_latency(self):
        hierarchy = build_hierarchy()
        mem = hierarchy.access(make_load(0x200000))
        hit = hierarchy.access(make_load(0x200000))
        assert mem.latency > 3 * hit.latency

    def test_ordering_of_level_latencies(self):
        """L1 < L2 < L3 < MEM in the sequential baseline."""
        hierarchy = build_hierarchy()
        mem_lat = hierarchy.access(make_load(0x40000)).latency
        l1_lat = hierarchy.access(make_load(0x40000)).latency
        assert l1_lat < mem_lat


class TestDataMovement:
    def test_fill_propagates_to_all_levels(self):
        hierarchy = build_hierarchy()
        hierarchy.access(make_load(0x12340))
        block = 0x12340 & ~63
        assert hierarchy.l1.contains(block)
        assert hierarchy.l2.contains(block)
        assert hierarchy.shared.l3.contains(block)

    def test_inclusion_l1_subset_of_l2(self):
        hierarchy = build_hierarchy()
        for i in range(4000):
            hierarchy.access(make_load(i * 64))
        for block in hierarchy.l1.resident_blocks():
            assert hierarchy.l2.contains(block)

    def test_store_marks_block_dirty(self):
        hierarchy = build_hierarchy()
        hierarchy.access(make_store(0x5000))
        assert hierarchy.l1.get_line(0x5000).dirty

    def test_directory_tracks_private_fills(self):
        hierarchy = build_hierarchy()
        hierarchy.access(make_load(0x9000))
        assert hierarchy.shared.directory.is_cached_privately(0x9000 & ~63)

    def test_dirty_l3_eviction_writes_back_to_dram(self):
        config = HierarchyConfig.paper_single_core()
        hierarchy = build_hierarchy(config)
        # Write far more dirty blocks than the LLC can hold.
        blocks = (config.l3.size_bytes // 64) + 4096
        for i in range(blocks):
            hierarchy.access(make_store(i * 64))
        assert hierarchy.shared.dram.stats.writes > 0


class TestStatistics:
    def test_miss_counts_are_monotone(self):
        """L1 misses >= L2 misses >= L3 misses for any trace."""
        hierarchy = build_hierarchy()
        for i in range(3000):
            hierarchy.access(make_load((i * 7919) % 100000 * 64))
        counts = hierarchy.miss_counts()
        assert counts["l1_misses"] >= counts["l2_misses"] >= counts["l3_misses"]

    def test_average_latency_positive(self):
        hierarchy = build_hierarchy()
        for i in range(100):
            hierarchy.access(make_load(i * 64))
        assert hierarchy.stats.average_memory_access_latency > 0

    def test_rejects_non_demand_access(self):
        hierarchy = build_hierarchy()
        with pytest.raises(ValueError):
            hierarchy.access(MemoryAccess(address=0,
                                          access_type=AccessType.PREFETCH))

    def test_reset_statistics(self):
        hierarchy = build_hierarchy()
        hierarchy.access(make_load(0x40))
        hierarchy.reset_statistics()
        assert hierarchy.stats.demand_accesses == 0
        assert hierarchy.energy.total == 0.0


class TestLevelPredictedPath:
    def test_correct_skip_is_faster_than_baseline(self):
        """A correct L2 bypass must be faster than the sequential lookup."""
        baseline = build_hierarchy(predictor=SequentialPredictor())
        predicted = build_hierarchy(predictor=DirectToDataPredictor())
        address = 0x800000
        # Touch once so the block lands in L3+L2+L1, then push it out of the
        # small L1/L2 by touching conflicting addresses far apart, leaving it
        # in the LLC only for the second access.
        for hierarchy in (baseline, predicted):
            hierarchy.access(make_load(address))
            for i in range(1, 40):
                hierarchy.access(make_load(address + i * 256 * 1024))
        base_result = baseline.access(make_load(address))
        pred_result = predicted.access(make_load(address))
        assert base_result.hit_level == pred_result.hit_level
        if base_result.hit_level in (Level.L3, Level.MEM):
            assert pred_result.latency < base_result.latency

    def test_harmful_misprediction_recovers_correct_level(self):
        """Bypassing an L2-resident block must be detected and recovered."""
        predictor = CacheLevelPredictor()
        hierarchy = build_hierarchy(predictor=predictor)
        address = 0x40000
        hierarchy.access(make_load(address))
        # Force the LocMap to believe the block is in memory although it still
        # sits in L2 (stale metadata is the paper's harmful case).
        predictor.locmap._apply(address, Level.MEM)
        # Evict from L1 only so the next access is an L1 miss that hits L2.
        hierarchy.l1.invalidate(address)
        result = hierarchy.access(make_load(address))
        assert result.hit_level is Level.L2
        assert result.misprediction
        assert hierarchy.stats.recoveries == 1
        # Recovery costs more than a plain sequential L2 hit would have.
        assert result.latency > 30

    def test_prediction_statistics_recorded(self):
        hierarchy = build_hierarchy(predictor=CacheLevelPredictor())
        for i in range(200):
            hierarchy.access(make_load(i * 64 * 113))
        assert hierarchy.predictor.stats.predictions == hierarchy.stats.predictions
        assert hierarchy.stats.predictions > 0

    def test_ideal_configuration_never_slower_than_baseline(self):
        config = HierarchyConfig.paper_single_core()
        ideal_config = HierarchyConfig.paper_single_core()
        ideal_config.ideal_miss_latency = True
        baseline = build_hierarchy(config)
        ideal = build_hierarchy(ideal_config)
        total_base = total_ideal = 0.0
        for i in range(500):
            address = (i * 7919) % 50000 * 64
            total_base += baseline.access(make_load(address)).latency
            total_ideal += ideal.access(make_load(address)).latency
        assert total_ideal <= total_base

    def test_energy_breakdown_has_predictor_category(self):
        hierarchy = build_hierarchy(predictor=CacheLevelPredictor())
        for i in range(50):
            hierarchy.access(make_load(i * 64 * 1009))
        breakdown = hierarchy.energy.breakdown()
        assert breakdown.get("predictor", 0.0) > 0.0
        assert breakdown.get("hierarchy", 0.0) > 0.0


class TestPrefetcherIntegration:
    def test_next_line_prefetcher_raises_l1_hit_rate(self):
        no_prefetch = build_hierarchy()
        with_prefetch = build_hierarchy(
            l1_prefetcher=TaggedNextLinePrefetcher(degree=1),
            l2_prefetcher=TaggedNextLinePrefetcher(degree=2))
        for i in range(2000):
            address = i * 64
            no_prefetch.access(make_load(address))
            with_prefetch.access(make_load(address))
        assert with_prefetch.stats.l1_hits > no_prefetch.stats.l1_hits

    def test_prefetches_counted(self):
        hierarchy = build_hierarchy(
            l1_prefetcher=TaggedNextLinePrefetcher(degree=1))
        for i in range(100):
            hierarchy.access(make_load(i * 64))
        assert hierarchy.stats.prefetches_issued > 0
