"""Unit tests for the fundamental memory data types."""

from __future__ import annotations

import pytest

from repro.memory.block import (
    AccessType,
    CacheLine,
    CoherenceState,
    DEFAULT_BLOCK_SIZE,
    Level,
    MemoryAccess,
    PREDICTABLE_LEVELS,
    block_address,
    block_number,
    page_number,
    page_offset,
)


class TestLevel:
    def test_ordering_from_core_to_memory(self):
        assert Level.L1 < Level.L2 < Level.L3 < Level.MEM

    def test_closer_than(self):
        assert Level.L2.closer_than(Level.MEM)
        assert not Level.MEM.closer_than(Level.L2)
        assert not Level.L3.closer_than(Level.L3)

    def test_is_cache(self):
        assert Level.L1.is_cache
        assert Level.L3.is_cache
        assert not Level.MEM.is_cache

    def test_predictable_levels_exclude_l1(self):
        assert Level.L1 not in PREDICTABLE_LEVELS
        assert set(PREDICTABLE_LEVELS) == {Level.L2, Level.L3, Level.MEM}


class TestAddressHelpers:
    def test_block_address_alignment(self):
        assert block_address(0) == 0
        assert block_address(63) == 0
        assert block_address(64) == 64
        assert block_address(130) == 128

    def test_block_number(self):
        assert block_number(0) == 0
        assert block_number(64) == 1
        assert block_number(6400) == 100

    def test_page_helpers(self):
        assert page_number(4096) == 1
        assert page_offset(4097) == 1
        assert page_number(4095) == 0

    def test_custom_block_size(self):
        assert block_address(200, block_size=128) == 128
        assert block_number(256, block_size=128) == 2


class TestAccessType:
    def test_demand_classification(self):
        assert AccessType.LOAD.is_demand
        assert AccessType.STORE.is_demand
        assert not AccessType.PREFETCH.is_demand
        assert not AccessType.WRITEBACK.is_demand


class TestMemoryAccess:
    def test_defaults_are_loads(self):
        access = MemoryAccess(address=0x1000)
        assert access.is_load
        assert not access.is_store
        assert access.thread_id == 0

    def test_block_method_uses_block_size(self):
        access = MemoryAccess(address=0x1040)
        assert access.block() == 0x1040
        assert access.block(block_size=128) == 0x1000

    def test_store_flag(self):
        access = MemoryAccess(address=0x2000, access_type=AccessType.STORE)
        assert access.is_store and not access.is_load


class TestCoherenceState:
    def test_validity(self):
        assert CoherenceState.MODIFIED.is_valid
        assert not CoherenceState.INVALID.is_valid

    def test_dirtiness(self):
        assert CoherenceState.MODIFIED.is_dirty
        assert CoherenceState.OWNED.is_dirty
        assert not CoherenceState.SHARED.is_dirty
        assert not CoherenceState.EXCLUSIVE.is_dirty

    def test_writability(self):
        assert CoherenceState.MODIFIED.can_write
        assert CoherenceState.EXCLUSIVE.can_write
        assert not CoherenceState.SHARED.can_write


class TestCacheLine:
    def test_valid_tracks_state(self):
        line = CacheLine(tag=1, block_addr=64)
        assert line.valid
        line.state = CoherenceState.INVALID
        assert not line.valid

    def test_prefetched_flag_default(self):
        line = CacheLine(tag=1, block_addr=64)
        assert not line.prefetched
        assert not line.dirty
