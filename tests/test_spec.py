"""Declarative hierarchy specs: validation, serialization, key stability
and N-level chain execution.

Three properties anchor this module:

1. Specs are validated at construction with contextual errors, and the
   JSON form is an exact fixed point (spec -> JSON -> spec -> JSON).
2. The content-addressed job keys of the paper systems are *pinned*
   against committed fixture strings (``tests/fixtures/job_keys.json``):
   the golden store must never move, whatever the config layer looks
   like internally.
3. Non-paper chain depths (2 and 4 levels) run through the same scalar
   and batch kernels and replay bit-identically, and a spec describing
   exactly the paper hierarchy is indistinguishable — results *and*
   store keys — from the legacy ``HierarchyConfig`` it replaces.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.memory.hierarchy import HierarchyConfig
from repro.memory.spec import (
    HierarchySpec,
    LevelSpec,
    derive_llc,
    load_hierarchy,
)
from repro.sim.config import SystemConfig, table1_description
from repro.sim.engine import MixJob, SimulationJob, apply_hierarchy
from repro.sim.store import job_spec, spec_key
from repro.sim.system import SimulatedSystem
from repro.workloads import build_workload

FIXTURES = Path(__file__).parent / "fixtures"
EXAMPLES = Path(__file__).parent.parent / "examples" / "hierarchies"


def _paper_levels():
    return HierarchySpec.paper_single_core().levels


def _chain(depth: int) -> HierarchySpec:
    """A 2- or 4-level variant of the paper hierarchy."""
    paper = HierarchySpec.paper_single_core()
    l1, l2, llc = paper.levels
    if depth == 2:
        levels = (l1, dataclasses.replace(llc, name="L2"))
    else:
        mid = dataclasses.replace(l2, name="L3", size_bytes=512 * 1024,
                                  tag_latency=16)
        levels = (l1, l2, mid, dataclasses.replace(llc, name="L4"))
    return dataclasses.replace(paper, levels=levels)


# ======================================================================
# Validation
# ======================================================================
class TestValidation:
    def test_zero_ways_rejected(self):
        with pytest.raises(ValueError, match="associativity must be at "
                                             "least 1 way"):
            LevelSpec(name="L1", size_bytes=32 * 1024, associativity=0)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ValueError, match="block_size must be a power "
                                             "of two"):
            LevelSpec(name="L1", size_bytes=32 * 1024, associativity=4,
                      block_size=48)

    def test_size_not_multiple_of_way_rejected(self):
        with pytest.raises(ValueError, match="multiple of block_size"):
            LevelSpec(name="L1", size_bytes=32 * 1024 + 64, associativity=4)

    def test_shrinking_capacity_rejected(self):
        l1, l2, llc = _paper_levels()
        small_llc = dataclasses.replace(llc, size_bytes=128 * 1024)
        with pytest.raises(ValueError, match="capacity must not shrink"):
            dataclasses.replace(HierarchySpec.paper_single_core(),
                                levels=(l1, l2, small_llc))

    def test_shrinking_latency_rejected(self):
        l1, l2, llc = _paper_levels()
        fast_llc = dataclasses.replace(llc, tag_latency=2, data_latency=3)
        with pytest.raises(ValueError, match="hit latency must not shrink"):
            dataclasses.replace(HierarchySpec.paper_single_core(),
                                levels=(l1, l2, fast_llc))

    def test_duplicate_level_names_rejected(self):
        l1, l2, llc = _paper_levels()
        dup = dataclasses.replace(l2, name="L1")
        with pytest.raises(ValueError, match="duplicate level name 'L1'"):
            dataclasses.replace(HierarchySpec.paper_single_core(),
                                levels=(l1, dup, llc))

    def test_single_level_rejected(self):
        l1 = _paper_levels()[0]
        with pytest.raises(ValueError, match="at least 2 cache levels"):
            dataclasses.replace(HierarchySpec.paper_single_core(),
                                levels=(l1,))

    def test_non_inclusive_intermediate_rejected(self):
        l1, l2, llc = _paper_levels()
        exclusive_l2 = dataclasses.replace(l2, inclusive=False)
        with pytest.raises(ValueError, match="only the LLC"):
            dataclasses.replace(HierarchySpec.paper_single_core(),
                                levels=(l1, exclusive_l2, llc))

    def test_mixed_block_sizes_rejected(self):
        l1, l2, llc = _paper_levels()
        odd = dataclasses.replace(l2, block_size=128)
        with pytest.raises(ValueError, match="one block size"):
            dataclasses.replace(HierarchySpec.paper_single_core(),
                                levels=(l1, odd, llc))

    def test_unknown_json_field_rejected(self):
        payload = json.loads(HierarchySpec.paper_single_core().to_json())
        payload["levels"][0]["banks"] = 4
        with pytest.raises(ValueError, match="unknown field"):
            HierarchySpec.from_json(json.dumps(payload))

    def test_bad_schema_tag_rejected(self):
        payload = json.loads(HierarchySpec.paper_single_core().to_json())
        payload["schema"] = "repro-hierarchy/999"
        with pytest.raises(ValueError, match="schema"):
            HierarchySpec.from_json(json.dumps(payload))


# ======================================================================
# Serialization
# ======================================================================
class TestRoundTrip:
    @pytest.mark.parametrize("spec", [
        HierarchySpec.paper_single_core(),
        HierarchySpec.paper_multi_core(),
        _chain(2),
        _chain(4),
    ], ids=["paper-single", "paper-multi", "two-level", "four-level"])
    def test_json_fixed_point(self, spec):
        text = spec.to_json()
        reparsed = HierarchySpec.from_json(text)
        assert reparsed == spec
        assert reparsed.to_json() == text

    @pytest.mark.parametrize("name", ["paper", "two_level", "four_level"])
    def test_committed_examples_are_fixed_points(self, name):
        path = EXAMPLES / f"{name}.json"
        text = path.read_text(encoding="utf-8")
        spec = load_hierarchy(path)
        assert spec.to_json() == text

    def test_legacy_round_trip(self):
        legacy = HierarchyConfig.paper_single_core()
        spec = HierarchySpec.from_legacy(legacy)
        assert spec.is_legacy_exact()
        back = spec.to_legacy()
        assert back.l1 == legacy.l1
        assert back.l2 == legacy.l2
        assert back.l3 == legacy.l3

    def test_derive_llc_replaces_fields(self):
        spec = HierarchySpec.paper_single_core()
        derived = derive_llc(spec, tag_latency=20, data_latency=20)
        assert derived.llc.tag_latency == 20
        assert derived.llc.data_latency == 20
        # Everything unnamed carries over.
        assert derived.llc.size_bytes == spec.llc.size_bytes
        assert derived.llc.mshr_entries == spec.llc.mshr_entries


# ======================================================================
# Key stability (the golden store must never move)
# ======================================================================
class TestKeyStability:
    @pytest.fixture(scope="class")
    def fixture_data(self):
        with open(FIXTURES / "job_keys.json", encoding="utf-8") as handle:
            return json.load(handle)

    @pytest.mark.parametrize("predictor", ["baseline", "tage-2kb",
                                           "tage-8kb", "d2d", "lp", "ideal"])
    def test_paper_single_core_keys_pinned(self, fixture_data, predictor):
        job = SimulationJob(workload="gapbs.pr", predictor=predictor,
                            num_accesses=400, warmup_accesses=120, seed=0)
        spec = job_spec(job)
        pinned = fixture_data[f"single/{predictor}"]
        assert json.dumps(spec, sort_keys=True) == pinned["canonical"]
        assert spec_key(spec) == pinned["key"]

    def test_fig15_variant_key_pinned(self, fixture_data):
        config = SystemConfig.sensitivity_variants("lp")["parallel-llc"]
        job = SimulationJob(workload="stream", predictor="lp",
                            num_accesses=400, warmup_accesses=120, seed=0,
                            config=config)
        spec = job_spec(job)
        pinned = fixture_data["fig15/parallel-llc"]
        assert json.dumps(spec, sort_keys=True) == pinned["canonical"]
        assert spec_key(spec) == pinned["key"]

    def test_mix_key_pinned(self, fixture_data):
        job = MixJob(mix="mix1", predictor="lp", accesses_per_core=240,
                     seed=0, config=SystemConfig.paper_multi_core())
        spec = job_spec(job)
        pinned = fixture_data["mix/mix1-lp"]
        assert json.dumps(spec, sort_keys=True) == pinned["canonical"]
        assert spec_key(spec) == pinned["key"]

    def test_paper_spec_config_key_matches_legacy(self):
        """A legacy-exact spec canonicalizes to the legacy key."""
        legacy_job = SimulationJob(workload="gapbs.pr", predictor="lp",
                                   num_accesses=400, warmup_accesses=120,
                                   seed=0,
                                   config=SystemConfig.paper_single_core())
        spec_config = dataclasses.replace(
            SystemConfig.paper_single_core(),
            hierarchy=HierarchySpec.paper_single_core())
        spec_job = dataclasses.replace(legacy_job, config=spec_config)
        assert spec_key(job_spec(spec_job)) \
            == spec_key(job_spec(legacy_job))

    def test_customized_spec_gets_distinct_key(self):
        base = SimulationJob(workload="gapbs.pr", predictor="lp",
                             num_accesses=400, warmup_accesses=120, seed=0,
                             config=SystemConfig.paper_single_core())
        custom = apply_hierarchy([base], _chain(2), "two-level")[0]
        assert spec_key(job_spec(custom)) != spec_key(job_spec(base))


# ======================================================================
# N-level execution
# ======================================================================
def _run(spec_or_config, kernel: str, accesses: int = 600):
    config = SystemConfig(name="chain-test", hierarchy=spec_or_config,
                          predictor="lp")
    system = SimulatedSystem(config)
    workload = build_workload("gapbs.pr")
    buffer = workload.generate_buffer(accesses, seed=0)
    return system.run_trace(buffer, kernel=kernel)


class TestChainExecution:
    @pytest.mark.parametrize("depth", [2, 4])
    def test_scalar_batch_bit_identical(self, depth):
        spec = _chain(depth)
        scalar = _run(spec, "scalar")
        batch = _run(spec, "batch")
        assert scalar.hierarchy_stats == batch.hierarchy_stats
        assert scalar.energy_breakdown == batch.energy_breakdown
        assert scalar.ipc == batch.ipc
        assert scalar.predictor_stats == batch.predictor_stats

    def test_paper_spec_matches_legacy_bit_for_bit(self):
        legacy = _run(HierarchyConfig.paper_single_core(), "batch")
        spec = _run(HierarchySpec.paper_single_core(), "batch")
        assert spec.hierarchy_stats == legacy.hierarchy_stats
        assert spec.energy_breakdown == legacy.energy_breakdown
        assert spec.ipc == legacy.ipc

    @pytest.mark.parametrize("depth,predictor", [(2, "baseline"),
                                                 (2, "ideal"),
                                                 (4, "baseline"),
                                                 (4, "ideal")])
    def test_chain_depths_run_all_predictors(self, depth, predictor):
        config = SystemConfig(name="chain-test", hierarchy=_chain(depth),
                              predictor=predictor)
        system = SimulatedSystem(config)
        workload = build_workload("gups")
        result = system.run_trace(workload.generate_buffer(400, seed=0))
        assert result.execution.instructions > 0
        assert result.hierarchy_stats.demand_accesses == 400


# ======================================================================
# Derived description (Table I)
# ======================================================================
class TestDescription:
    def test_four_level_table_renders_generically(self):
        config = dataclasses.replace(SystemConfig.paper_single_core(),
                                     hierarchy=_chain(4))
        table = table1_description(config)
        assert "L4 Cache" in table
        assert "8 MB" in table["L4 Cache"] or "2 MB" in table["L4 Cache"]
        assert "L1/L2/L3 inclusive" in table["Coherency"]
        assert "L4 non-inclusive" in table["Coherency"]

    def test_memory_line_derived_from_dram_config(self):
        table = table1_description()
        assert table["Main Memory"].startswith("16 GB DDR4-2400")
