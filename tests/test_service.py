"""Tests for the persistent simulation service (:mod:`repro.service`).

The headline semantics under test:

* warm requests are answered straight from the store with zero simulation;
* concurrent identical requests coalesce onto **one** running simulation
  per job key (asserted via the store's put counter and the service's
  dedup counters);
* a daemon killed mid-grid resumes from the store with zero recomputation
  of the cells it already persisted;
* the protocol survives malformed input without taking the daemon down.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.cli import main, run_experiment
from repro.experiments import EXPERIMENTS, Scale
from repro.service import (
    ServiceClient,
    ServiceError,
    SimulationService,
    create_server,
    format_address,
    job_from_wire,
    parse_address,
    scale_from_wire,
    serve_forever,
)
from repro.sim.engine import MixJob, SimulationJob
from repro.sim.store import ResultStore, job_key

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Tiny wire scale shared by the in-process tests.
TINY_WIRE = {"accesses": 120, "warmup": 40, "mix_accesses": 80}
TINY = Scale(accesses=120, warmup=40, mix_accesses=80)


@pytest.fixture(autouse=True)
def _isolated_env(monkeypatch):
    """Service tests must not inherit an ambient store/trace/jobs config."""
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.setenv("REPRO_TRACE_DIR", "")


@pytest.fixture
def service(tmp_path):
    # Thread workers: this suite monkeypatches execute_job and reaches
    # into pool internals, which needs jobs to stay in-process.  The
    # process-pool path has its own coverage in TestProcessPool below.
    svc = SimulationService(tmp_path / "store", jobs=2, pool="thread")
    yield svc
    svc.close(wait=True)


@pytest.fixture
def server(service):
    """An in-process daemon on an ephemeral localhost port."""
    srv, address = create_server(service, port=0)
    thread = threading.Thread(target=serve_forever, args=(service, srv),
                              daemon=True)
    thread.start()
    client = ServiceClient(address, timeout=30.0)
    client.wait_healthy(timeout=10.0)
    yield client
    try:
        client.shutdown()
    except (OSError, ServiceError):
        pass
    thread.join(timeout=10.0)


# ======================================================================
# Addresses
# ======================================================================
class TestAddresses:
    def test_bare_port_is_localhost_tcp(self):
        assert parse_address("7321") == ("tcp", ("127.0.0.1", 7321))

    def test_host_and_port(self):
        assert parse_address("10.0.0.5:99") == ("tcp", ("10.0.0.5", 99))

    def test_path_is_unix(self):
        assert parse_address("/run/repro.sock") == ("unix",
                                                    "/run/repro.sock")

    def test_unix_prefix_is_stripped(self):
        assert parse_address("unix:/tmp/s.sock") == ("unix", "/tmp/s.sock")

    def test_invalid_port_raises(self):
        with pytest.raises(ServiceError):
            parse_address("localhost:notaport")

    def test_empty_address_raises(self):
        with pytest.raises(ServiceError):
            parse_address("   ")

    def test_format_round_trips(self):
        for address in ("127.0.0.1:7321", "unix:/tmp/repro.sock"):
            family, location = parse_address(address)
            assert format_address(family, location) == address


# ======================================================================
# Wire specs
# ======================================================================
class TestWireSpecs:
    def test_single_job_round_trip(self):
        job = job_from_wire({"kind": "single", "workload": "gups",
                             "predictor": "lp", "num_accesses": 100,
                             "warmup_accesses": 20, "seed": 3})
        assert job == SimulationJob(workload="gups", predictor="lp",
                                    num_accesses=100, warmup_accesses=20,
                                    seed=3)

    def test_single_is_the_default_kind(self):
        job = job_from_wire({"workload": "gups", "predictor": "baseline",
                             "num_accesses": 50})
        assert isinstance(job, SimulationJob)
        assert job.warmup_accesses == 0 and job.seed == 0

    def test_mix_job_round_trip(self):
        job = job_from_wire({"kind": "mix", "mix": "mix1",
                             "predictor": "lp", "accesses_per_core": 80})
        assert job == MixJob(mix="mix1", predictor="lp",
                             accesses_per_core=80, seed=0)

    def test_wire_job_keys_match_engine_job_keys(self):
        """A wire spec addresses the same store cell as the native job."""
        wire = job_from_wire({"workload": "gups", "predictor": "lp",
                              "num_accesses": 100, "warmup_accesses": 20})
        native = SimulationJob(workload="gups", predictor="lp",
                               num_accesses=100, warmup_accesses=20)
        assert job_key(wire) == job_key(native)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown job kind"):
            job_from_wire({"kind": "nope", "workload": "gups"})

    def test_missing_field_names_the_field(self):
        with pytest.raises(ServiceError, match="predictor"):
            job_from_wire({"workload": "gups", "num_accesses": 10})

    def test_non_object_spec_rejected(self):
        with pytest.raises(ServiceError):
            job_from_wire(["not", "a", "spec"])

    def test_scale_defaults_and_fields(self):
        assert scale_from_wire(None) == Scale()
        assert scale_from_wire(TINY_WIRE) == TINY

    def test_scale_rejects_unknown_fields(self):
        with pytest.raises(ServiceError, match="unknown scale field"):
            scale_from_wire({"accesses": 10, "speed": 11})


# ======================================================================
# Service core (no socket)
# ======================================================================
class TestServiceCore:
    def test_submit_simulates_then_serves_from_store(self, service):
        first = service.submit(experiment="fig13", scale=TINY_WIRE,
                               wait=True)
        assert first["state"] == "done"
        assert first["simulated"] == first["total_jobs"] > 0
        assert first["stored"] == first["coalesced"] == 0

        second = service.submit(experiment="fig13", scale=TINY_WIRE,
                                wait=True)
        assert second["simulated"] == 0
        assert second["stored"] == second["total_jobs"]
        assert second["stats"] == first["stats"]

    def test_stats_match_a_local_run_bit_for_bit(self, service, tmp_path):
        payload = service.submit(experiment="fig13", scale=TINY_WIRE,
                                 wait=True)
        local = run_experiment("fig13", ResultStore(tmp_path / "local"),
                               TINY)
        assert payload["stats"] == local.stats

    def test_stats_file_written_under_the_store(self, service):
        payload = service.submit(experiment="fig13", scale=TINY_WIRE,
                                 wait=True)
        stats_path = Path(payload["stats_path"])
        assert stats_path == service.store.root / "stats" / "fig13.json"
        assert json.loads(stats_path.read_text()) == payload["stats"]

    def test_force_resimulates_stored_cells(self, service):
        service.submit(experiment="fig13", scale=TINY_WIRE, wait=True)
        forced = service.submit(experiment="fig13", scale=TINY_WIRE,
                                force=True, wait=True)
        assert forced["simulated"] == forced["total_jobs"]
        assert forced["stored"] == 0

    def test_explicit_job_grid_returns_results(self, service):
        jobs = [{"workload": "gups", "predictor": predictor,
                 "num_accesses": 80, "warmup_accesses": 20}
                for predictor in ("baseline", "lp")]
        payload = service.submit(jobs=jobs, wait=True)
        assert payload["state"] == "done"
        assert len(payload["results"]) == 2
        for encoded in payload["results"]:
            assert encoded["kind"] == "single"
            assert encoded["workload"] == "gups"

    def test_explicit_grid_shares_store_cells_with_experiments(
            self, service):
        jobs = [{"workload": "gups", "predictor": "lp",
                 "num_accesses": 160}]
        service.submit(jobs=jobs, wait=True)
        again = service.submit(jobs=jobs, wait=True)
        assert again["stored"] == 1 and again["simulated"] == 0

    def test_unknown_experiment_rejected(self, service):
        with pytest.raises(ServiceError, match="unknown experiment"):
            service.submit(experiment="fig99", wait=True)

    def test_submit_needs_exactly_one_grid_source(self, service):
        with pytest.raises(ServiceError):
            service.submit()
        with pytest.raises(ServiceError):
            service.submit(experiment="fig13", jobs=[{}])

    def test_async_submit_is_pollable_to_completion(self, service):
        payload = service.submit(experiment="fig13", scale=TINY_WIRE)
        assert payload["state"] == "running"
        final = service.result(payload["id"], wait=True, timeout=60.0)
        assert final["state"] == "done"
        assert final["completed"] == final["total_jobs"]
        assert final["stats"] is not None

    def test_status_reports_store_coverage(self, service):
        empty = service.status(scale=TINY_WIRE)
        assert empty["experiments"]["fig13"]["stored"] == 0
        service.submit(experiment="fig13", scale=TINY_WIRE, wait=True)
        after = service.status(scale=TINY_WIRE)
        row = after["experiments"]["fig13"]
        assert row["stored"] == row["total"] > 0
        # fig14 runs the same (mix x predictor) grid: shared cells show up.
        assert after["experiments"]["fig14"]["stored"] == row["stored"]

    def test_unknown_request_id_rejected(self, service):
        with pytest.raises(ServiceError, match="unknown request id"):
            service.status("req-999-nope")

    def test_counters_track_dedup_traffic(self, service):
        service.submit(experiment="fig13", scale=TINY_WIRE, wait=True)
        service.submit(experiment="fig13", scale=TINY_WIRE, wait=True)
        stats = service.stats()
        total = EXPERIMENTS["fig13"].jobs(TINY)
        assert stats["counters"]["simulations"] == len(total)
        assert stats["counters"]["store_hits"] == len(total)
        assert stats["store"]["puts"] == len(total)
        assert stats["workers"] == 2
        assert stats["inflight"] == 0


# ======================================================================
# In-flight deduplication under concurrency
# ======================================================================
class TestDedup:
    def test_concurrent_identical_requests_simulate_each_key_once(
            self, service):
        """N clients ask for the golden figure at once: one simulation per
        job key, bit-identical stats for every client."""
        clients = 3
        barrier = threading.Barrier(clients)
        payloads: list = [None] * clients
        errors: list = []

        def request(slot: int) -> None:
            try:
                barrier.wait()
                payloads[slot] = service.submit(experiment="golden",
                                                wait=True)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=request, args=(slot,))
                   for slot in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors
        total = len(EXPERIMENTS["golden"].jobs(TINY))

        # The dedup invariant: every job key was simulated exactly once
        # and persisted exactly once, no matter how many clients raced.
        assert service.counters["simulations"] == total
        assert service.store.puts == total
        assert service.store.total_lines() == len(service.store) == total
        # Every requested cell was answered one of the three ways.
        answered = (service.counters["simulations"]
                    + service.counters["store_hits"]
                    + service.counters["coalesced"])
        assert answered == clients * total

        states = [payload["state"] for payload in payloads]
        assert states == ["done"] * clients
        reference = payloads[0]["stats"]
        assert all(payload["stats"] == reference for payload in payloads)
        committed = json.loads((REPO_ROOT / "GOLDEN_stats.json").read_text())
        assert reference == committed

    def test_concurrent_requests_with_shared_cells_coalesce(self, service):
        """fig13 and fig14 run the same grid: racing them simulates the
        shared cells once."""
        barrier = threading.Barrier(2)
        done: list = [None, None]

        def request(slot: int, name: str) -> None:
            barrier.wait()
            done[slot] = service.submit(experiment=name, scale=TINY_WIRE,
                                        wait=True)

        threads = [threading.Thread(target=request, args=(0, "fig13")),
                   threading.Thread(target=request, args=(1, "fig14"))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        total = len(EXPERIMENTS["fig13"].jobs(TINY))
        assert done[0]["state"] == done[1]["state"] == "done"
        assert service.counters["simulations"] == total
        assert service.store.puts == total

    def test_coalesced_requests_fail_loudly_when_the_owner_fails(
            self, service, monkeypatch):
        """A watcher attached to a failing owner must error, not hang."""
        import repro.service as service_module

        started = threading.Event()

        def explode(job, trace_cache=None):
            started.set()
            time.sleep(0.05)
            raise RuntimeError("boom")

        monkeypatch.setattr(service_module, "execute_job", explode)
        owner = service.submit(experiment="fig13", scale=TINY_WIRE)
        assert started.wait(timeout=30.0)
        watcher = service.submit(experiment="fig13", scale=TINY_WIRE)
        final_owner = service.result(owner["id"], wait=True, timeout=60.0)
        final_watcher = service.result(watcher["id"], wait=True,
                                       timeout=60.0)
        assert final_owner["state"] == "failed"
        assert final_owner["failed_jobs"]
        assert any("boom" in failure["error"]
                   for failure in final_owner["failed_jobs"])
        assert final_watcher["state"] == "failed"
        # The failing keys were retried up to the budget, then poisoned.
        assert service.counters["retries"] > 0
        assert service.counters["quarantined"] > 0


class TestFailureHygiene:
    """The daemon must fail requests loudly and leak nothing."""

    def test_claim_failure_leaves_no_inflight_futures(self, service):
        """A pool that cannot accept work mid-claim must not strand
        registered futures (later requests would coalesce onto them and
        wait forever)."""
        service._pool.shutdown(wait=True)
        payload = service.submit(experiment="fig13", scale=TINY_WIRE,
                                 wait=True)
        assert payload["state"] == "failed"
        assert service._inflight == {}
        # A replacement pool over the same store still works.
        service._pool = ThreadPoolExecutor(max_workers=1)
        recovered = service.submit(experiment="fig13", scale=TINY_WIRE,
                                   wait=True)
        assert recovered["state"] == "done"

    def test_finished_requests_are_evicted_beyond_the_cap(
            self, service, monkeypatch):
        import repro.service as service_module

        monkeypatch.setattr(service_module, "MAX_FINISHED_REQUESTS", 2)
        spec = {"workload": "gups", "predictor": "baseline",
                "num_accesses": 40}
        ids = [service.submit(jobs=[spec], wait=True)["id"]
               for _ in range(5)]
        assert len(service._requests) <= 3
        with pytest.raises(ServiceError, match="unknown request id"):
            service.status(ids[0])
        # The newest finished request is still pollable.
        assert service.status(ids[-1])["state"] == "done"


# ======================================================================
# Admission control: atomic check-and-reserve
# ======================================================================
class TestAdmissionControl:
    def test_admit_is_check_and_reserve(self, tmp_path):
        svc = SimulationService(tmp_path / "store", jobs=1, pool="thread",
                                max_queue=1)
        try:
            reserved = svc._admit(1)
            assert reserved == 1
            # The slot is reserved the moment the check passes — a second
            # submit sheds even though no job has reached the pool yet
            # (the pre-fix race: both passed the check, both ran).
            with pytest.raises(ServiceError) as excinfo:
                svc._admit(1)
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.retryable is True
            svc._release_reservation(reserved)
            assert svc._admit(1) == 1
            svc._release_reservation(1)
        finally:
            svc.close(wait=True)

    def test_concurrent_submits_cannot_overshoot_max_queue(
            self, tmp_path, monkeypatch):
        import repro.service as service_module

        release = threading.Event()
        real_execute = service_module.execute_job

        def held(job, **kwargs):
            release.wait(15.0)
            return real_execute(job, **kwargs)

        monkeypatch.setattr(service_module, "execute_job", held)
        svc = SimulationService(tmp_path / "store", jobs=4, pool="thread",
                                max_queue=2)
        try:
            admitted, sheds = [], []

            def submit(seed: int) -> None:
                spec = {"workload": "gups", "predictor": "baseline",
                        "num_accesses": 40, "seed": seed}
                try:
                    admitted.append(
                        svc.submit(jobs=[spec], wait=False)["id"])
                except ServiceError as exc:
                    sheds.append(exc)

            threads = [threading.Thread(target=submit, args=(seed,))
                       for seed in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # Held jobs keep every admitted slot occupied, so admissions
            # can never exceed the bound — the pre-fix race admitted all
            # eight.  (Reservations may transiently double-count against
            # active jobs, which sheds early but never over-admits.)
            assert 1 <= len(admitted) <= 2
            assert len(sheds) == 8 - len(admitted)
            assert all(exc.code == "overloaded" and exc.retryable
                       for exc in sheds)
            assert svc.counters["shed"] == len(sheds)
            release.set()
            for request_id in admitted:
                final = svc.result(request_id, wait=True, timeout=30.0)
                assert final["state"] == "done"
            # Drained: the backlog returns to zero, nothing leaks.
            assert svc._reserved_jobs == 0
            deadline = time.time() + 10.0
            while svc._active_jobs and time.time() < deadline:
                time.sleep(0.01)
            assert svc._active_jobs == 0
        finally:
            release.set()
            svc.close(wait=True)


# ======================================================================
# Sharded merges: fail fast, not in plan order
# ======================================================================
class TestShardedFailFast:
    def test_failing_shard_fails_the_merge_promptly(
            self, tmp_path, monkeypatch):
        """A late-plan shard failure must surface immediately and cancel
        queued siblings — not wait for every earlier shard to finish."""
        import repro.service as service_module

        release = threading.Event()
        executed = []

        def fake_shard(task):
            if task == "fail":
                raise RuntimeError("shard exploded")
            executed.append(task)
            release.wait(15.0)
            return task

        monkeypatch.setattr(service_module, "execute_shard", fake_shard)
        svc = SimulationService(tmp_path / "store", jobs=2, pool="thread")
        try:
            # Two workers: "slow-a" occupies one, "fail" hits the other
            # immediately, "slow-b"/"slow-c" are still queued behind them.
            merged = svc._submit_sharded(["slow-a", "fail", "slow-b",
                                          "slow-c"])
            start = time.perf_counter()
            with pytest.raises(RuntimeError, match="shard exploded"):
                merged.result(timeout=15.0)
            elapsed = time.perf_counter() - start
            # Plan-order collection would block ~15s on the held shard
            # before ever observing the failure.
            assert elapsed < 5.0
            release.set()
            svc._pool.shutdown(wait=True)
            # At least one queued sibling was cancelled before a worker
            # could reach it ("slow-b" may race the cancel onto the
            # worker the failing shard just freed; "slow-c" cannot —
            # both workers are held until the cancels have landed).
            assert "slow-a" in executed
            assert "slow-c" not in executed
        finally:
            release.set()
            svc.close(wait=True)


# ======================================================================
# The socket layer
# ======================================================================
class TestSocketServer:
    def test_health_and_figures(self, server):
        health = server.health()
        assert health["status"] == "ok"
        assert health["pid"] == os.getpid()
        figures = server.figures()["experiments"]
        assert set(figures) == set(EXPERIMENTS)

    def test_submit_over_the_wire(self, server):
        payload = server.submit(experiment="fig13", scale=TINY_WIRE,
                                wait=True)
        assert payload["state"] == "done"
        assert payload["simulated"] == payload["total_jobs"]
        again = server.submit(experiment="fig13", scale=TINY_WIRE,
                              wait=True)
        assert again["simulated"] == 0
        assert again["stats"] == payload["stats"]

    def test_async_submit_and_result_over_the_wire(self, server):
        submitted = server.submit(experiment="fig13", scale=TINY_WIRE)
        assert submitted["state"] in ("running", "done")
        final = server.result(submitted["id"], wait=True, timeout=60.0)
        assert final["state"] == "done"
        assert final["stats"] is not None

    def test_error_responses_do_not_kill_the_daemon(self, server):
        with pytest.raises(ServiceError, match="unknown experiment"):
            server.submit(experiment="fig99", wait=True)
        with pytest.raises(ServiceError, match="unknown op"):
            server.request("dance")
        assert server.health()["status"] == "ok"

    def test_malformed_json_is_answered_not_fatal(self, server):
        family, location = parse_address(server.address)
        with socket.create_connection(location, timeout=10.0) as sock:
            sock.sendall(b"this is not json\n")
            response = json.loads(sock.makefile("rb").readline())
        assert response["ok"] is False
        assert "JSON" in response["error"]
        assert server.health()["status"] == "ok"

    def test_unix_socket_server(self, tmp_path):
        svc = SimulationService(tmp_path / "store", jobs=1)
        sock_path = tmp_path / "repro.sock"
        srv, address = create_server(svc, socket_path=sock_path)
        thread = threading.Thread(target=serve_forever, args=(svc, srv),
                                  daemon=True)
        thread.start()
        try:
            client = ServiceClient(address, timeout=10.0)
            assert client.wait_healthy()["status"] == "ok"
            assert address == f"unix:{sock_path}"
            client.shutdown()
        finally:
            thread.join(timeout=10.0)
        assert not sock_path.exists()  # unlinked on shutdown

    def test_create_server_needs_exactly_one_binding(self, service):
        with pytest.raises(ServiceError):
            create_server(service)
        with pytest.raises(ServiceError):
            create_server(service, port=0, socket_path="/tmp/x.sock")

    def test_shutdown_op_stops_the_accept_loop(self, tmp_path):
        svc = SimulationService(tmp_path / "store", jobs=1)
        srv, address = create_server(svc, port=0)
        thread = threading.Thread(target=serve_forever, args=(svc, srv),
                                  daemon=True)
        thread.start()
        client = ServiceClient(address, timeout=10.0)
        client.wait_healthy()
        assert client.shutdown()["stopping"] is True
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        with pytest.raises(OSError):
            ServiceClient(address, timeout=0.5).health()


# ======================================================================
# Unix socket safety: never steal a live daemon's socket
# ======================================================================
class TestUnixSocketSafety:
    def test_refuses_to_replace_a_live_socket(self, tmp_path):
        svc = SimulationService(tmp_path / "store", jobs=1)
        sock_path = tmp_path / "repro.sock"
        srv, address = create_server(svc, socket_path=sock_path)
        thread = threading.Thread(target=serve_forever, args=(svc, srv),
                                  daemon=True)
        thread.start()
        other = SimulationService(tmp_path / "store2", jobs=1)
        try:
            client = ServiceClient(address, timeout=10.0)
            client.wait_healthy()
            with pytest.raises(ServiceError, match="already listening"):
                create_server(other, socket_path=sock_path)
            # The incumbent survived the probe unharmed.
            assert client.health()["status"] == "ok"
            assert sock_path.exists()
            client.shutdown()
        finally:
            thread.join(timeout=10.0)
            other.close(wait=True)

    def test_replaces_a_stale_socket_file(self, tmp_path):
        sock_path = tmp_path / "repro.sock"
        # A crashed daemon leaves its socket file behind: bound once,
        # never listening again.  Connecting is refused, so it is stale.
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        leftover.bind(str(sock_path))
        leftover.close()
        assert sock_path.exists()
        svc = SimulationService(tmp_path / "store", jobs=1)
        srv, address = create_server(svc, socket_path=sock_path)
        thread = threading.Thread(target=serve_forever, args=(svc, srv),
                                  daemon=True)
        thread.start()
        try:
            client = ServiceClient(address, timeout=10.0)
            assert client.wait_healthy()["status"] == "ok"
            client.shutdown()
        finally:
            thread.join(timeout=10.0)


# ======================================================================
# Client clock hygiene and bounded request bookkeeping
# ======================================================================
class TestClientClock:
    def test_wait_healthy_survives_wall_clock_jumps(self, tmp_path,
                                                    monkeypatch):
        """wait_healthy must pace itself on the monotonic clock: a wall
        clock jumping forward (NTP step, suspend/resume) must not eat
        the retry budget."""
        import repro.service as service_module
        from types import SimpleNamespace

        state = {"mono": 1000.0, "wall": 5_000_000.0}

        def fake_monotonic():
            return state["mono"]

        def fake_time():
            # Every read of the wall clock leaps an hour forward.
            state["wall"] += 3600.0
            return state["wall"]

        def fake_sleep(seconds):
            state["mono"] += seconds

        fake = SimpleNamespace(monotonic=fake_monotonic, time=fake_time,
                               sleep=fake_sleep,
                               perf_counter=time.perf_counter)
        monkeypatch.setattr(service_module, "time", fake)
        client = ServiceClient("127.0.0.1:1", timeout=0.1)
        probes = []

        def failing_health():
            probes.append(state["mono"])
            raise OSError("connection refused")

        monkeypatch.setattr(client, "health", failing_health)
        with pytest.raises(OSError, match="connection refused"):
            client.wait_healthy(timeout=1.0, interval=0.05)
        # 1.0s budget at 0.05s intervals: ~20 probes.  A wall-clock
        # deadline would have bailed after the very first probe.
        assert len(probes) >= 15

    def test_finished_requests_evicted_by_completion_time(
            self, tmp_path, monkeypatch):
        import repro.service as service_module

        monkeypatch.setattr(service_module, "MAX_FINISHED_REQUESTS", 2)
        svc = SimulationService(tmp_path / "store", jobs=1, pool="thread")
        try:
            spec = {"workload": "gups", "predictor": "baseline",
                    "num_accesses": 40, "seed": 0}
            ids = []
            for seed in range(3):
                spec_n = dict(spec, seed=seed)
                ids.append(svc.submit(jobs=[spec_n], wait=True)["id"])
            # Forge completion order that disagrees with both insertion
            # and request-id order: ids[1] finished first.
            for request_id, finished_at in zip(ids, (300.0, 100.0, 200.0)):
                svc._requests[request_id].finished_at = finished_at
            # The next submit trips eviction down to MAX_FINISHED_REQUESTS.
            svc.submit(jobs=[dict(spec, seed=9)], wait=True)
            with pytest.raises(ServiceError, match="unknown request"):
                svc.result(ids[1])
            assert svc.result(ids[0])["state"] == "done"
            assert svc.result(ids[2])["state"] == "done"
        finally:
            svc.close(wait=True)


# ======================================================================
# Daemon subprocess: kill -9 mid-grid, restart, resume
# ======================================================================
def _spawn_daemon(tmp_path: Path, store: Path, jobs: str = "1",
                  extra: "tuple[str, ...]" = ()
                  ) -> "tuple[subprocess.Popen, str]":
    ready = tmp_path / f"ready-{time.monotonic_ns()}.txt"
    env = dict(os.environ, PYTHONPATH=str(SRC), REPRO_JOBS=jobs,
               REPRO_TRACE_DIR="")
    env.pop("REPRO_STORE", None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--store", str(store), "--ready-file", str(ready), *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    deadline = time.time() + 30.0
    while not ready.is_file():
        if process.poll() is not None:
            raise AssertionError(
                f"daemon died on startup: "
                f"{process.stderr.read().decode()}")  # type: ignore
        if time.time() > deadline:
            process.kill()
            raise AssertionError("daemon never wrote its ready file")
        time.sleep(0.02)
    return process, ready.read_text().strip()


@pytest.mark.slow
class TestDaemonRestart:
    SCALE = {"accesses": 400, "warmup": 120, "mix_accesses": 300}

    def test_kill_and_restart_resumes_with_zero_recomputation(
            self, tmp_path):
        store = tmp_path / "store"
        daemon, address = _spawn_daemon(tmp_path, store)
        try:
            client = ServiceClient(address, timeout=30.0)
            client.wait_healthy(timeout=30.0)
            submitted = client.submit(experiment="fig13", scale=self.SCALE)
            total = submitted["total_jobs"]
            # Let it persist part of the grid, then kill it un-gracefully.
            deadline = time.time() + 60.0
            while True:
                snapshot = client.status(submitted["id"])
                if snapshot["completed"] >= 1 or \
                        snapshot["state"] != "running":
                    break
                assert time.time() < deadline, "grid never started"
                time.sleep(0.02)
        finally:
            daemon.kill()
            daemon.wait(timeout=30.0)

        survivors = len(ResultStore(store))
        assert survivors >= 1  # the kill landed after at least one put

        restarted, address = _spawn_daemon(tmp_path, store)
        try:
            client = ServiceClient(address, timeout=30.0)
            client.wait_healthy(timeout=30.0)
            payload = client.submit(experiment="fig13", scale=self.SCALE,
                                    wait=True)
            assert payload["state"] == "done"
            # Zero recomputation of stored cells: everything the first
            # daemon persisted is served, only the remainder simulates.
            assert payload["stored"] >= survivors
            assert payload["simulated"] == total - payload["stored"]
        finally:
            restarted.terminate()
            restarted.wait(timeout=30.0)

        # One line per key across both daemon lifetimes: nothing was
        # simulated (or persisted) twice.
        final = ResultStore(store)
        assert len(final) == total
        assert final.total_lines() == total
        # And the resumed grid's metrics match a clean local run.
        local = run_experiment(
            "fig13", ResultStore(tmp_path / "reference"),
            Scale(accesses=400, warmup=120, mix_accesses=300))
        daemon_stats = json.loads(
            (store / "stats" / "fig13.json").read_text())
        assert daemon_stats == local.stats

    def test_sigterm_shuts_down_gracefully(self, tmp_path):
        daemon, address = _spawn_daemon(tmp_path, tmp_path / "store")
        client = ServiceClient(address, timeout=30.0)
        client.wait_healthy(timeout=30.0)
        daemon.send_signal(signal.SIGTERM)
        assert daemon.wait(timeout=30.0) == 0

    def test_warm_daemon_answers_from_a_store_written_locally(
            self, tmp_path):
        """A daemon pointed at a pre-populated store simulates nothing."""
        store = tmp_path / "store"
        run_experiment("fig13", ResultStore(store), TINY)
        daemon, address = _spawn_daemon(tmp_path, store)
        try:
            client = ServiceClient(address, timeout=30.0)
            client.wait_healthy(timeout=30.0)
            payload = client.submit(experiment="fig13", scale=TINY_WIRE,
                                    wait=True)
            assert payload["simulated"] == 0
            assert payload["stored"] == payload["total_jobs"]
        finally:
            daemon.terminate()
            daemon.wait(timeout=30.0)


# ======================================================================
# Process-pool workers (the daemon default) and within-job sharding
# ======================================================================
def _assert_pids_exit(pids, timeout: float = 15.0) -> None:
    """Every pid must disappear (or be reaped) within the deadline."""
    deadline = time.time() + timeout
    for pid in pids:
        while True:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                break
            assert time.time() < deadline, \
                f"pool child {pid} survived shutdown"
            time.sleep(0.05)


class TestProcessPool:
    def _process_service(self, tmp_path, **kwargs):
        svc = SimulationService(tmp_path / "store", **kwargs)
        if svc.pool_kind != "process":
            svc.close(wait=True)
            pytest.skip("process pool unavailable on this host: "
                        f"{svc._pool_fallback_reason}")
        return svc

    def test_jobs_run_on_pool_children(self, tmp_path):
        svc = self._process_service(tmp_path, jobs=2)
        try:
            payload = svc.submit(experiment="fig13", scale=TINY_WIRE,
                                 wait=True)
            assert payload["state"] == "done"
            assert payload["simulated"] == payload["total_jobs"]
            stats = svc.stats()
            assert stats["pool"]["type"] == "process"
            assert stats["pool"]["workers"] == 2
            assert stats["pool"]["children"]  # live worker pids
            assert stats["pool"]["fallback_reason"] is None
        finally:
            svc.close(wait=True)

    def test_process_pool_results_match_thread_pool(self, tmp_path):
        svc = self._process_service(tmp_path, jobs=2)
        try:
            pooled = svc.submit(experiment="fig13", scale=TINY_WIRE,
                                wait=True)
        finally:
            svc.close(wait=True)
        serial = SimulationService(tmp_path / "serial-store", jobs=1,
                                   pool="thread")
        try:
            reference = serial.submit(experiment="fig13", scale=TINY_WIRE,
                                      wait=True)
        finally:
            serial.close(wait=True)
        assert pooled["stats"] == reference["stats"]

    def test_close_terminates_pool_children(self, tmp_path):
        # Regression: a SIGTERM'd daemon used to leak its pool children;
        # close() must reap (or terminate) every worker process.
        svc = self._process_service(tmp_path, jobs=2)
        try:
            svc.submit(experiment="fig13", scale=TINY_WIRE, wait=True)
            children = svc.stats()["pool"]["children"]
            assert children
        finally:
            svc.close(wait=True)
        _assert_pids_exit(children)
        svc.close(wait=True)  # idempotent after the pool is gone

    def test_approx_sharded_daemon_counters_and_store_bypass(
            self, tmp_path):
        # Thread pool keeps the sharded path fast and in-process here;
        # the process-pool path is covered by the tests above.  fig07 is
        # all SimulationJobs — the plannable kind (mixes never shard).
        svc = SimulationService(tmp_path / "store", jobs=2, shards=4,
                                sharding="approx", pool="thread")
        try:
            payload = svc.submit(experiment="fig07", scale=TINY_WIRE,
                                 wait=True)
            assert payload["state"] == "done"
            assert payload["simulated"] == payload["total_jobs"] == 21
            assert svc.counters["shard_merges"] == 21
            assert svc.counters["shards_executed"] == 21 * 4
            # Approximate results never touch the exact-only store...
            assert svc.store.puts == 0
            # ...so a repeat request simulates from scratch.
            again = svc.submit(experiment="fig07", scale=TINY_WIRE,
                               wait=True)
            assert again["stored"] == 0
            assert again["simulated"] == again["total_jobs"]
            stats = svc.stats()
            assert stats["sharding"] == "approx"
            assert stats["shards"] == 4
        finally:
            svc.close(wait=True)

    def test_stats_payload_shape_for_exact_thread_pool(self, service):
        stats = service.stats()
        assert stats["sharding"] == "exact"
        assert stats["shards"] == 1
        assert stats["pool"]["type"] == "thread"
        assert stats["pool"]["children"] == []
        for counter in ("shards_executed", "shard_merges",
                        "pool_failovers"):
            assert stats["counters"][counter] == 0


@pytest.mark.slow
class TestDaemonPoolShutdown:
    def test_sigterm_reaps_process_pool_children(self, tmp_path):
        # Regression for the leak: SIGTERM must take the pool's child
        # processes down with the daemon, not orphan them.
        daemon, address = _spawn_daemon(tmp_path, tmp_path / "store",
                                        jobs="2",
                                        extra=("--pool", "process"))
        try:
            client = ServiceClient(address, timeout=30.0)
            client.wait_healthy(timeout=30.0)
            client.submit(experiment="fig13", scale=TINY_WIRE, wait=True)
            stats = client.stats()
            assert stats["pool"]["type"] == "process"
            children = stats["pool"]["children"]
            assert children
        except BaseException:
            daemon.kill()
            daemon.wait(timeout=30.0)
            raise
        daemon.send_signal(signal.SIGTERM)
        assert daemon.wait(timeout=30.0) == 0
        _assert_pids_exit(children)


# ======================================================================
# CLI integration (--remote against an in-process server)
# ======================================================================
class TestRemoteCLI:
    def test_run_remote_round_trip(self, server, capsys):
        scale = ["--accesses", "120", "--warmup", "40",
                 "--mix-accesses", "80"]
        assert main(["run", "fig13", "--remote", server.address]
                    + scale) == 0
        out = capsys.readouterr().out
        assert "0 from store" in out and "simulated" in out
        assert main(["run", "fig13", "--remote", server.address]
                    + scale) == 0
        assert "0 simulated" in capsys.readouterr().out

    def test_run_remote_check_against_golden(self, server, capsys,
                                             monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["run", "golden", "--remote", server.address,
                     "--check"]) == 0
        assert "matches" in capsys.readouterr().out

    def test_run_remote_stats_out(self, server, tmp_path, capsys):
        out_path = tmp_path / "stats.json"
        assert main(["run", "fig13", "--remote", server.address,
                     "--accesses", "120", "--warmup", "40",
                     "--mix-accesses", "80",
                     "--stats-out", str(out_path)]) == 0
        del capsys
        stats = json.loads(out_path.read_text())
        local = run_experiment("fig13", ResultStore(tmp_path / "ref"),
                               TINY)
        assert stats == local.stats

    def test_status_remote_reports_daemon_coverage(self, server, capsys):
        scale = ["--accesses", "120", "--warmup", "40",
                 "--mix-accesses", "80"]
        assert main(["status", "--remote", server.address] + scale) == 0
        out = capsys.readouterr().out
        assert "daemon @" in out and "fig13" in out

    def test_figures_remote_lists_experiments(self, server, capsys):
        assert main(["figures", "--remote", server.address]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_non_json_peer_is_a_service_error_not_a_crash(self, capsys):
        """A foreign server (e.g. HTTP) answering garbage must surface as
        the CLI's clean error message, not a JSONDecodeError traceback."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def answer_like_http():
            conn, _ = listener.accept()
            conn.recv(4096)
            conn.sendall(b"HTTP/1.1 400 Bad Request\r\n\r\n")
            conn.close()

        thread = threading.Thread(target=answer_like_http, daemon=True)
        thread.start()
        try:
            assert main(["run", "fig13", "--remote",
                         f"127.0.0.1:{port}"]) == 1
            err = capsys.readouterr().err
            assert "cannot run against daemon" in err
            assert "non-JSON" in err
        finally:
            thread.join(timeout=10.0)
            listener.close()

    def test_remote_unreachable_is_a_clean_error(self, tmp_path, capsys):
        # Grab a port nothing is listening on.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        assert main(["run", "fig13", "--remote", f"127.0.0.1:{port}"]) == 1
        assert "cannot run against daemon" in capsys.readouterr().err
        assert main(["status", "--remote", f"127.0.0.1:{port}"]) == 1
        assert "cannot query daemon" in capsys.readouterr().err
