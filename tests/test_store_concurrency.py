"""Multi-writer regression tests for the sharded results store.

The bug these tests pin down: the old single-file store appended through
buffered text IO (one ``handle.write`` could split a line across multiple
``write(2)`` syscalls, so two processes could interleave torn fragments)
and repaired torn tails by rewriting the whole file from a stale
in-memory prefix (dropping entries other processes appended in between).
The sharded store appends each line with a single locked ``os.write`` and
repairs by truncating in place, so N concurrent writers must never lose
or corrupt an entry.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main, run_experiment
from repro.experiments import Scale
from repro.sim.engine import SimulationEngine, SimulationJob
from repro.sim.store import ResultStore, fsck_store, serialize_result

SRC = Path(__file__).resolve().parent.parent / "src"

#: Writer processes x puts per writer for the stress test.
WRITERS = 4
PUTS_PER_WRITER = 12

_WRITER_SCRIPT = """
import hashlib
import json
import sys

from repro.sim.store import ResultStore, deserialize_result

root, writer_id, encoded_path, puts = sys.argv[1:5]
with open(encoded_path, encoding="utf-8") as handle:
    result = deserialize_result(json.load(handle))
store = ResultStore(root)
for index in range(int(puts)):
    key = hashlib.sha256(f"{writer_id}:{index}".encode()).hexdigest()
    store.put(key, {"writer": writer_id, "index": index}, result)
"""


def _subprocess_env() -> dict:
    env = dict(os.environ, PYTHONPATH=str(SRC))
    env.pop("REPRO_STORE", None)
    env.pop("REPRO_JOBS", None)
    return env


@pytest.mark.slow
def test_concurrent_writers_lose_nothing(tmp_path):
    """N processes x M puts into one store, then a clean, complete load."""
    job = SimulationJob(workload="gups", predictor="lp", num_accesses=60,
                        warmup_accesses=20)
    result = SimulationEngine(jobs=1, store=False).run([job])[0]
    encoded_path = tmp_path / "result.json"
    encoded_path.write_text(json.dumps(serialize_result(result)),
                            encoding="utf-8")

    root = tmp_path / "store"
    env = _subprocess_env()
    writers = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT, str(root), str(writer),
             str(encoded_path), str(PUTS_PER_WRITER)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        for writer in range(WRITERS)
    ]
    for process in writers:
        _, stderr = process.communicate(timeout=120)
        assert process.returncode == 0, stderr.decode()

    import hashlib
    store = ResultStore(root)
    expected = {
        hashlib.sha256(f"{writer}:{index}".encode()).hexdigest()
        for writer in range(WRITERS) for index in range(PUTS_PER_WRITER)
    }
    assert set(store.keys()) == expected
    assert all(store.get(key) == result for key in expected)
    assert store.misses == 0

    # And the files themselves are structurally sound: nothing to salvage.
    report = fsck_store(root)
    assert report["torn"] == report["corrupt"] == report["foreign"] == 0
    assert report["moved"] == 0
    assert report["kept"] == WRITERS * PUTS_PER_WRITER


@pytest.mark.slow
@pytest.mark.parametrize("jobs_env", ["1", "2"])
def test_two_simultaneous_cli_runs_share_one_store(tmp_path, jobs_env):
    """Two `python -m repro run` processes racing on one store stay clean.

    With REPRO_JOBS=2 each invocation also fans simulation out over worker
    processes, so the store lock sees contention from both racing parents.
    """
    store_dir = tmp_path / "store"
    args = ["-m", "repro", "run", "fig13", "--store", str(store_dir),
            "--accesses", "120", "--warmup", "40", "--mix-accesses", "80"]
    env = dict(_subprocess_env(), REPRO_JOBS=jobs_env,
               REPRO_TRACE_DIR="")
    racers = [subprocess.Popen([sys.executable, *args], env=env,
                               stdout=subprocess.PIPE,
                               stderr=subprocess.PIPE)
              for _ in range(2)]
    for process in racers:
        _, stderr = process.communicate(timeout=300)
        assert process.returncode == 0, stderr.decode()

    # The racing runs may have double-simulated cells (both miss, both
    # put; newest wins) but must not have lost or corrupted any.
    report = fsck_store(store_dir)
    assert report["torn"] == report["corrupt"] == report["foreign"] == 0
    store = ResultStore(store_dir)
    scale = Scale(accesses=120, warmup=40, mix_accesses=80)
    rerun = run_experiment("fig13", store, scale)
    assert rerun.simulated == 0
    assert rerun.stored == rerun.total_jobs

    # A clean single-process run agrees bit-for-bit on the metrics.
    reference = run_experiment("fig13", ResultStore(tmp_path / "ref"),
                               scale)
    assert rerun.stats == reference.stats


def test_store_fsck_cli_reports_clean_store(tmp_path, capsys):
    run_experiment("fig13", ResultStore(tmp_path),
                   Scale(accesses=120, warmup=40, mix_accesses=80))
    assert main(["store", "fsck", "--store", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 unsalvageable lines dropped" in out
