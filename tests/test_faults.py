"""The chaos harness: deterministic fault injection and the recovery paths.

The contract every test here pins down: **faults may cost retries, never
correctness**.  Injected disk errors, torn writes, crashing/killed workers
and dropped connections must leave final results bit-identical to a clean
run — the golden grid under a nonzero fault schedule matches
``GOLDEN_stats.json`` exactly — while the recovery work (retries, put
retries, quarantine, reconnects) shows up honestly in counters.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import faults
from repro.experiments import EXPERIMENTS, Scale, canonical_json
from repro.faults import (
    FaultPlane,
    FaultSpecError,
    InjectedCrashError,
    fault_point,
    parse_schedule,
)
from repro.service import (
    ServiceClient,
    ServiceError,
    SimulationService,
    create_server,
    serve_forever,
)
from repro.sim.engine import SimulationEngine, SimulationJob, TraceCache
from repro.sim.store import ResultStore, fsck_store
from repro.trace import TraceBuffer
from repro.workloads import build_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_STATS = REPO_ROOT / "GOLDEN_stats.json"

TINY = Scale(accesses=120, warmup=40, mix_accesses=80)
TINY_WIRE = {"accesses": 120, "warmup": 40, "mix_accesses": 80}


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """Every test starts with no plane and a cleared environment."""
    monkeypatch.delenv(faults.REPRO_FAULTS_ENV, raising=False)
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.setenv("REPRO_TRACE_DIR", "")
    faults.uninstall()
    yield
    faults.uninstall()


# ======================================================================
# Schedule grammar
# ======================================================================
class TestSpecParsing:
    def test_round_trip(self):
        spec = ("store.append:eio@p=0.05,seed=7;"
                "worker.job:crash@seed=3,times=5;"
                "service.response:drop;"
                "trace.save:latency@ms=50.0")
        rules = parse_schedule(spec)
        assert [rule.spec() for rule in rules] == [
            "store.append:eio@p=0.05,seed=7",
            "worker.job:crash@seed=3,times=5",
            "service.response:drop",
            "trace.save:latency@ms=50.0",
        ]

    def test_whitespace_and_blank_entries_are_tolerated(self):
        rules = parse_schedule("  store.read:eio ;; \n worker.job:kill ")
        assert [(rule.site, rule.kind) for rule in rules] == [
            ("store.read", "eio"), ("worker.job", "kill")]

    @pytest.mark.parametrize("bad", [
        "nosuchsite:eio",
        "store.append:nosuchkind",
        "store.append",
        "store.append:eio@p=nope",
        "store.append:eio@frobnicate=1",
        "store.append:eio@p=1.5",
        "store.append:eio@times=-1",
    ])
    def test_malformed_schedules_fail_loudly(self, bad):
        with pytest.raises(FaultSpecError):
            parse_schedule(bad)

    def test_unset_env_means_no_plane_and_no_overhead(self, monkeypatch):
        monkeypatch.delenv(faults.REPRO_FAULTS_ENV, raising=False)
        faults.uninstall()
        assert faults.active_plane() is None
        assert fault_point("store.append", 100) is None
        assert faults.counters_snapshot() == {}

    def test_env_schedule_is_resolved_lazily_once(self, monkeypatch):
        monkeypatch.setenv(faults.REPRO_FAULTS_ENV,
                           "trace.load:eio@times=1")
        faults.uninstall()
        with pytest.raises(OSError):
            fault_point("trace.load")
        # times=1 exhausted: the same memoized plane answers quietly now.
        assert fault_point("trace.load") is None


class TestDeterminism:
    def test_same_seed_same_firing_sequence(self):
        def firing_pattern(seed):
            plane = FaultPlane.from_spec(
                f"worker.job:crash@p=0.3,seed={seed}")
            pattern = []
            for _ in range(64):
                try:
                    plane.check("worker.job")
                    pattern.append(False)
                except InjectedCrashError:
                    pattern.append(True)
            return pattern

        assert firing_pattern(7) == firing_pattern(7)
        assert firing_pattern(7) != firing_pattern(8)

    def test_times_and_after_bound_the_fires(self):
        plane = FaultPlane.from_spec("store.read:eio@times=2,after=3")
        outcomes = []
        for _ in range(10):
            try:
                plane.check("store.read")
                outcomes.append("ok")
            except OSError:
                outcomes.append("eio")
        assert outcomes == ["ok"] * 3 + ["eio"] * 2 + ["ok"] * 5

    def test_counters_track_evaluations_and_fires(self):
        plane = FaultPlane.from_spec("client.connect:drop@p=0.5,seed=1")
        for _ in range(40):
            try:
                plane.check("client.connect")
            except ConnectionResetError:
                pass
        (counts,) = plane.counters().values()
        assert counts["evaluated"] == 40
        assert 0 < counts["fired"] < 40
        assert plane.total_fired() == counts["fired"]


# ======================================================================
# Store hooks: append (EIO / torn) and read
# ======================================================================
def _tiny_result():
    job = SimulationJob(workload="gups", predictor="lp", num_accesses=60,
                        warmup_accesses=20)
    return SimulationEngine(jobs=1, store=False).run([job])[0]


class TestStoreFaults:
    def test_eio_append_propagates_and_store_stays_loadable(self, tmp_path):
        result = _tiny_result()
        store = ResultStore(tmp_path)
        store.put("aa" * 32, {"n": 0}, result)
        faults.install("store.append:eio@times=1")
        with pytest.raises(OSError) as excinfo:
            store.put("bb" * 32, {"n": 1}, result)
        assert excinfo.value.errno == errno.EIO
        # The shard holds the first entry untouched; retrying succeeds.
        store.put("bb" * 32, {"n": 1}, result)
        fresh = ResultStore(tmp_path)
        assert set(fresh.keys()) == {"aa" * 32, "bb" * 32}
        assert fresh.get("bb" * 32) == result

    def test_torn_append_is_repaired_by_the_next_locked_write(
            self, tmp_path):
        result = _tiny_result()
        store = ResultStore(tmp_path)
        store.put("aa" * 32, {"n": 0}, result)
        faults.install("store.append:torn@seed=3,times=1")
        with pytest.raises(OSError):
            store.put("bb" * 32, {"n": 1}, result)
        # The torn prefix is on disk: a fresh open skips it with a
        # warning, and the next locked append truncates it in place.
        salvage = ResultStore(tmp_path)
        assert set(salvage.keys()) == {"aa" * 32}
        store.put("bb" * 32, {"n": 1}, result)
        fresh = ResultStore(tmp_path)
        assert set(fresh.keys()) == {"aa" * 32, "bb" * 32}
        assert fresh.get("bb" * 32) == result
        report = fsck_store(tmp_path)
        assert report["torn"] == report["corrupt"] == 0
        assert report["kept"] == 2

    def test_read_fault_degrades_to_a_miss(self, tmp_path, capsys):
        result = _tiny_result()
        ResultStore(tmp_path).put("cc" * 32, {"n": 2}, result)
        fresh = ResultStore(tmp_path)  # cold in-memory cache: disk read
        faults.install("store.read:eio@times=1")
        assert fresh.get("cc" * 32) is None
        assert fresh.misses == 1
        assert "treating as a miss" in capsys.readouterr().err
        # The entry is intact; the next read (no fault) serves it.
        assert fresh.get("cc" * 32) == result

    def test_engine_retries_the_put_and_loses_nothing(self, tmp_path):
        faults.install("store.append:eio@times=1")
        engine = SimulationEngine(jobs=1, store=tmp_path / "store")
        job = SimulationJob(workload="gups", predictor="lp",
                            num_accesses=60, warmup_accesses=20)
        (result,) = engine.run([job])
        assert engine.put_retries == 1
        assert engine.put_failures == 0
        # The retried append landed: a rerun is a pure store hit.
        faults.uninstall()
        rerun = SimulationEngine(jobs=1, store=tmp_path / "store")
        assert rerun.run([job]) == [result]
        assert rerun.store.hits == 1


# ======================================================================
# Trace hooks: torn saves and unreadable loads regenerate
# ======================================================================
class TestTraceFaults:
    def test_torn_save_raises_and_leaves_garbage(self, tmp_path):
        buffer = build_workload("gups").generate_buffer(64, seed=0)
        target = tmp_path / "trace.npz"
        faults.install("trace.save:torn@seed=1,times=1")
        with pytest.raises(OSError):
            buffer.save(target)
        assert target.is_file()  # the torn artifact a real crash leaves
        with pytest.raises(Exception):
            TraceBuffer.load(target)
        # Recovery: the next save simply overwrites the garbage.
        buffer.save(target)
        assert TraceBuffer.load(target) == buffer

    def test_cache_regenerates_through_save_and_load_faults(
            self, tmp_path, capsys):
        faults.install("trace.save:torn@seed=1,times=1;"
                       "trace.load:eio@times=1")
        cache = TraceCache(spill_dir=tmp_path)
        clean = build_workload("gups").generate_buffer(80, seed=0)
        # Save fault: the spill fails, the buffer is still served.
        assert cache.get("gups", 80, seed=0) == clean
        err = capsys.readouterr().err
        assert "could not spill" in err
        # A fresh cache spills successfully, then survives a load fault
        # by regenerating (and the buffer is still correct).
        warm = TraceCache(spill_dir=tmp_path)
        assert warm.get("gups", 80, seed=0) == clean
        colder = TraceCache(spill_dir=tmp_path)
        assert colder.get("gups", 80, seed=0) == clean
        assert "unreadable trace spill" in capsys.readouterr().err


# ======================================================================
# Engine: crashing and killed workers
# ======================================================================
class TestEngineFaults:
    def test_injected_crash_escapes_execute_job(self):
        faults.install("worker.job:crash@times=1")
        job = SimulationJob(workload="gups", predictor="lp",
                            num_accesses=40)
        with pytest.raises(InjectedCrashError):
            SimulationEngine(jobs=1, store=False).run([job])

    def test_kill_is_inert_outside_worker_children(self):
        faults.install("worker.job:kill@times=1")
        job = SimulationJob(workload="gups", predictor="lp",
                            num_accesses=40)
        # Must not exit this process; must not raise either.
        (result,) = SimulationEngine(jobs=1, store=False).run([job])
        assert result is not None

    @pytest.mark.slow
    def test_killed_pool_workers_fail_over_to_serial(self, monkeypatch):
        """worker.job:kill takes every pool child down; the engine
        finishes the grid serially and the results are bit-identical."""
        jobs = [SimulationJob(workload=workload, predictor=predictor,
                              num_accesses=60, warmup_accesses=20)
                for workload in ("gups", "stream")
                for predictor in ("baseline", "lp")]
        reference = SimulationEngine(jobs=1, store=False).run(jobs)

        monkeypatch.setenv(faults.REPRO_FAULTS_ENV,
                           "worker.job:kill@p=1.0")
        faults.uninstall()  # re-resolve from the env (children inherit)
        engine = SimulationEngine(jobs=2, store=False)
        results = engine.run(jobs)
        assert engine.pool_failovers == 1
        assert results == reference


# ======================================================================
# Service: per-job retry, quarantine, admission, degraded mode
# ======================================================================
class TestServiceRecovery:
    def test_crashing_jobs_are_retried_to_success(self, tmp_path):
        faults.install("worker.job:crash@times=2")
        service = SimulationService(tmp_path / "store", jobs=2,
                                    pool="thread")
        try:
            payload = service.submit(experiment="golden", wait=True)
        finally:
            service.close()
        assert payload["state"] == "done"
        assert service.counters["retries"] == 2
        assert service.counters["job_failures"] == 0
        assert service.counters["quarantined"] == 0

    def test_persistent_failure_quarantines_only_that_job(
            self, tmp_path, monkeypatch):
        import repro.service as service_module

        spec = {"workload": "gups", "predictor": "lp", "num_accesses": 40}
        sibling = {"workload": "stream", "predictor": "lp",
                   "num_accesses": 40}
        real_execute = service_module.execute_job

        def poisoned(job, trace_cache=None):
            if getattr(job, "workload", None) == "gups":
                raise RuntimeError("persistent gups failure")
            return real_execute(job, trace_cache)

        monkeypatch.setattr(service_module, "execute_job", poisoned)
        service = SimulationService(tmp_path / "store", jobs=1,
                                    job_retries=2, pool="thread")
        try:
            payload = service.submit(jobs=[spec, sibling], wait=True)
            assert payload["state"] == "failed"
            (failure,) = payload["failed_jobs"]
            assert failure["index"] == 0
            assert failure["code"] == "job_failed"
            assert "persistent gups failure" in failure["error"]
            # The sibling completed and persisted despite the failure.
            assert payload["completed"] == 1
            assert service.store.puts == 1
            assert service.counters["retries"] == 1
            assert service.counters["quarantined"] == 1
            # Resubmitting fails fast on the poisoned key — no retries.
            retries_before = service.counters["retries"]
            again = service.submit(jobs=[spec], wait=True)
            assert again["state"] == "failed"
            assert again["failed_jobs"][0]["code"] == "quarantined"
            assert service.counters["retries"] == retries_before
            # force clears the quarantine and retries for real.
            monkeypatch.setattr(service_module, "execute_job",
                                real_execute)
            forced = service.submit(jobs=[spec], force=True, wait=True)
            assert forced["state"] == "done"
            assert service.status()["quarantine"] == {}
        finally:
            service.close()

    def test_hung_job_hits_the_deadline_and_recovers(
            self, tmp_path, monkeypatch):
        import repro.service as service_module

        real_execute = service_module.execute_job
        hung_once = threading.Event()

        def sleepy(job, trace_cache=None):
            if not hung_once.is_set():
                hung_once.set()
                time.sleep(30.0)
            return real_execute(job, trace_cache)

        monkeypatch.setattr(service_module, "execute_job", sleepy)
        service = SimulationService(tmp_path / "store", jobs=2,
                                    job_timeout=0.5, pool="thread")
        spec = {"workload": "gups", "predictor": "lp", "num_accesses": 40}
        try:
            start = time.monotonic()
            payload = service.submit(jobs=[spec], wait=True)
            seconds = time.monotonic() - start
        finally:
            service.close(wait=False)
        assert payload["state"] == "done"
        assert seconds < 20.0  # did not wait out the hung attempt
        assert service.counters["retries"] >= 1

    def test_admission_control_sheds_with_a_retryable_error(
            self, tmp_path, monkeypatch):
        import repro.service as service_module

        release = threading.Event()
        started = threading.Event()

        def stuck(job, trace_cache=None):
            started.set()
            release.wait(30.0)
            raise RuntimeError("never completes meaningfully")

        monkeypatch.setattr(service_module, "execute_job", stuck)
        service = SimulationService(tmp_path / "store", jobs=1,
                                    max_queue=1, job_retries=1,
                                    pool="thread")
        spec = {"workload": "gups", "predictor": "lp", "num_accesses": 40}
        try:
            service.submit(jobs=[spec])
            assert started.wait(10.0)
            with pytest.raises(ServiceError) as excinfo:
                service.submit(jobs=[dict(spec, seed=1)])
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.retryable
            assert service.counters["shed"] == 1
        finally:
            release.set()
            service.close(wait=False)

    def test_unwritable_store_flips_to_degraded_readonly(self, tmp_path):
        store_root = tmp_path / "store"
        warm = SimulationService(store_root, jobs=2)
        try:
            warm.submit(experiment="golden", wait=True)
        finally:
            warm.close()

        # Every append now fails hard: the first cold put exhausts the
        # retry budget and flips the daemon into degraded mode...
        faults.install("store.append:enospc")
        service = SimulationService(store_root, jobs=2)
        spec = {"workload": "gups", "predictor": "lp", "num_accesses": 48}
        try:
            payload = service.submit(jobs=[spec], wait=True)
            # ...but the computed result still flowed back to the caller.
            assert payload["state"] == "done"
            assert service.degraded
            assert service.counters["put_failures"] == 1
            assert service.health()["status"] == "degraded"
            # Warm answers keep flowing (golden is fully stored)...
            again = service.submit(experiment="golden", wait=True)
            assert again["state"] == "done"
            assert again["stored"] == again["total_jobs"]
            # ...while cold grids and force are refused honestly.
            with pytest.raises(ServiceError) as excinfo:
                service.submit(jobs=[dict(spec, seed=9)])
            assert excinfo.value.code == "degraded"
            with pytest.raises(ServiceError):
                service.submit(experiment="golden", force=True)
        finally:
            service.close(wait=False)


# ======================================================================
# Client: deadlines, reconnect, no hangs
# ======================================================================
class TestClientResilience:
    def test_dead_daemon_raises_retryable_connection_error(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here any more
        client = ServiceClient(f"127.0.0.1:{port}", timeout=1.0,
                               retries=2, backoff=0.01)
        start = time.monotonic()
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert time.monotonic() - start < 10.0
        assert excinfo.value.code == "connection"
        assert excinfo.value.retryable
        assert isinstance(excinfo.value, OSError)  # legacy catch style

    def test_silent_daemon_times_out_instead_of_hanging(self):
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        accepted = []

        def accept_and_stall():
            conn, _ = server.accept()
            accepted.append(conn)  # read nothing, answer nothing

        threads = [threading.Thread(target=accept_and_stall, daemon=True)
                   for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            client = ServiceClient(
                f"127.0.0.1:{server.getsockname()[1]}", timeout=0.3,
                retries=2, backoff=0.01)
            start = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.stats()
            assert time.monotonic() - start < 10.0
            assert excinfo.value.code == "timeout"
            assert excinfo.value.retryable
        finally:
            for conn in accepted:
                conn.close()
            server.close()

    def test_result_wait_survives_daemon_death_mid_request(
            self, tmp_path, monkeypatch):
        """The satellite bug: result(wait=True) must not hang forever
        when the daemon dies mid-request."""
        import repro.service as service_module

        def forever(job, trace_cache=None):
            time.sleep(60.0)

        monkeypatch.setattr(service_module, "execute_job", forever)
        monkeypatch.setattr(ServiceClient, "WAIT_CHUNK", 0.2)
        service = SimulationService(tmp_path / "store", jobs=1,
                                    pool="thread")
        server, address = create_server(service, port=0)
        thread = threading.Thread(target=serve_forever,
                                  args=(service, server), daemon=True)
        thread.start()
        client = ServiceClient(address, timeout=5.0, retries=2,
                               backoff=0.01)
        client.wait_healthy()
        spec = {"workload": "gups", "predictor": "lp", "num_accesses": 40}
        submitted = client.submit(jobs=[spec])
        killer = threading.Timer(0.5, server.request_shutdown)
        killer.start()
        start = time.monotonic()
        with pytest.raises(ServiceError) as excinfo:
            client.result(submitted["id"], wait=True, timeout=30.0)
        assert time.monotonic() - start < 25.0
        assert excinfo.value.retryable
        assert excinfo.value.code in ("connection", "timeout")
        killer.cancel()
        thread.join(timeout=10.0)
        service.close(wait=False)

    def test_result_wait_honors_the_overall_timeout(
            self, tmp_path, monkeypatch):
        import repro.service as service_module

        def forever(job, trace_cache=None):
            time.sleep(60.0)

        monkeypatch.setattr(service_module, "execute_job", forever)
        monkeypatch.setattr(ServiceClient, "WAIT_CHUNK", 0.2)
        service = SimulationService(tmp_path / "store", jobs=1,
                                    pool="thread")
        try:
            submitted = service.submit(jobs=[{
                "workload": "gups", "predictor": "lp",
                "num_accesses": 40}])
            server, address = create_server(service, port=0)
            thread = threading.Thread(target=serve_forever,
                                      args=(service, server), daemon=True)
            thread.start()
            client = ServiceClient(address, timeout=5.0)
            client.wait_healthy()
            start = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.result(submitted["id"], wait=True, timeout=1.0)
            assert excinfo.value.code == "timeout"
            assert 0.5 < time.monotonic() - start < 10.0
            server.request_shutdown()
            thread.join(timeout=10.0)
        finally:
            service.close(wait=False)

    def test_dropped_responses_are_retried_transparently(self, tmp_path):
        faults.install("service.response:drop@times=1")
        service = SimulationService(tmp_path / "store", jobs=1)
        server, address = create_server(service, port=0)
        thread = threading.Thread(target=serve_forever,
                                  args=(service, server), daemon=True)
        thread.start()
        try:
            client = ServiceClient(address, timeout=10.0, backoff=0.01)
            # First response is dropped mid-flight; the retry answers.
            assert client.health()["status"] == "ok"
        finally:
            server.request_shutdown()
            thread.join(timeout=10.0)
            service.close(wait=False)

    def test_connect_faults_exhaust_into_connection_error(self, tmp_path):
        faults.install("client.connect:drop")
        client = ServiceClient("127.0.0.1:1", timeout=0.2, retries=2,
                               backoff=0.01)
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert excinfo.value.code == "connection"


# ======================================================================
# The chaos harness: golden grid under fire, bit-identical stats
# ======================================================================
#: A deliberately noisy but convergent schedule: every kind of fault
#: fires (deterministically, a bounded number of times) and every
#: recovery path runs, yet retries always win in the end.
CHAOS_SCHEDULE = (
    "store.append:eio@times=2;"
    "store.append:torn@seed=5,times=1,after=4;"
    "worker.job:crash@times=2;"
    "worker.job:crash@p=0.2,seed=11,times=2,after=8;"
    "trace.save:torn@seed=2,times=1;"
    "trace.load:eio@times=1;"
    "store.read:eio@times=1;"
    "service.response:drop@times=2;"
    "client.connect:drop@times=1,after=2"
)


class TestChaosGolden:
    def test_golden_grid_under_chaos_matches_golden_stats(self, tmp_path):
        """The acceptance criterion: injected store EIO/torn appends,
        crashing workers, unreadable traces and dropped connections cost
        retries — and the golden stats stay bit-identical."""
        reference = json.loads(GOLDEN_STATS.read_text(encoding="utf-8"))
        faults.install(CHAOS_SCHEDULE)
        service = SimulationService(tmp_path / "store", jobs=2,
                                    pool="thread")
        server, address = create_server(service, port=0)
        thread = threading.Thread(target=serve_forever,
                                  args=(service, server), daemon=True)
        thread.start()
        try:
            client = ServiceClient(address, timeout=60.0, backoff=0.01)
            client.wait_healthy()
            payload = client.submit(experiment="golden", wait=True)
            assert payload["state"] == "done"
            assert payload["stats"] == reference
            # A second (warm) pass under the same plane also matches.
            again = client.submit(experiment="golden", wait=True)
            assert again["state"] == "done"
            assert again["stats"] == reference
            stats = client.stats()
            assert stats["counters"]["retries"] > 0
            assert stats["counters"]["put_retries"] > 0
            assert stats["counters"]["job_failures"] == 0
            assert stats["counters"]["quarantined"] == 0
            assert not stats["degraded"]
            fired = sum(counts["fired"]
                        for counts in stats["faults"].values())
            assert fired >= 5
        finally:
            server.request_shutdown()
            thread.join(timeout=15.0)
            service.close(wait=False)
        # The store the chaos run left behind is structurally sound.
        report = fsck_store(tmp_path / "store")
        assert report["torn"] == report["corrupt"] == 0
        # And a clean serial engine agrees with everything persisted.
        rerun = SimulationService(tmp_path / "store", jobs=1,
                                    pool="thread")
        try:
            warm = rerun.submit(experiment="golden", wait=True)
            assert warm["stats"] == reference
            assert warm["simulated"] == 0
        finally:
            rerun.close()

    def test_zero_overhead_claim_is_structural(self):
        """With no plane installed, fault_point is one load + one check
        (no allocation, no lock): assert the fast path stays trivially
        cheap relative to the armed path."""
        faults.uninstall()
        iterations = 200_000
        start = time.perf_counter()
        for _ in range(iterations):
            fault_point("store.append", 128)
        off_seconds = time.perf_counter() - start
        per_call_ns = off_seconds / iterations * 1e9
        # Generous bound: even slow CI boxes do an attribute check in
        # well under 2 microseconds.
        assert per_call_ns < 2000


# ======================================================================
# Multiprocess regression: torn appends across writer processes
# ======================================================================
_FAULTY_WRITER = """
import hashlib
import json
import os
import sys

from repro.sim.store import ResultStore, deserialize_result

root, writer_id, encoded_path, puts = sys.argv[1:5]
with open(encoded_path, encoding="utf-8") as handle:
    result = deserialize_result(json.load(handle))
store = ResultStore(root)
failures = 0
for index in range(int(puts)):
    key = hashlib.sha256(f"{writer_id}:{index}".encode()).hexdigest()
    for attempt in range(4):
        try:
            store.put(key, {"writer": writer_id, "index": index}, result)
            break
        except OSError:
            failures += 1
    else:
        raise SystemExit(f"writer {writer_id}: put {index} never landed")
print(failures)
"""


@pytest.mark.slow
def test_concurrent_writers_survive_injected_append_faults(tmp_path):
    """N writer processes, each under its own EIO/torn append schedule:
    every entry must land (after retries) and the store must fsck clean —
    the multiprocess companion to tests/test_store_concurrency.py."""
    from repro.sim.store import serialize_result

    result = _tiny_result()
    encoded_path = tmp_path / "result.json"
    encoded_path.write_text(json.dumps(serialize_result(result)),
                            encoding="utf-8")
    root = tmp_path / "store"
    writers, puts_per_writer = 3, 8
    src = REPO_ROOT / "src"

    processes = []
    for writer in range(writers):
        env = dict(os.environ, PYTHONPATH=str(src))
        env.pop("REPRO_STORE", None)
        env.pop("REPRO_JOBS", None)
        # A distinct deterministic schedule per writer: sparse EIO and
        # one torn write each, all mid-stream.
        env[faults.REPRO_FAULTS_ENV] = (
            f"store.append:eio@p=0.3,seed={writer + 1},times=3;"
            f"store.append:torn@p=0.3,seed={writer + 101},times=2")
        processes.append(subprocess.Popen(
            [sys.executable, "-c", _FAULTY_WRITER, str(root), str(writer),
             str(encoded_path), str(puts_per_writer)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE))
    total_failures = 0
    for process in processes:
        stdout, stderr = process.communicate(timeout=120)
        assert process.returncode == 0, stderr.decode()
        total_failures += int(stdout.decode().strip() or 0)
    assert total_failures > 0  # the schedules actually fired

    import hashlib
    store = ResultStore(root)
    expected = {
        hashlib.sha256(f"{writer}:{index}".encode()).hexdigest()
        for writer in range(writers) for index in range(puts_per_writer)
    }
    assert set(store.keys()) == expected
    assert all(store.get(key) == result for key in expected)
    report = fsck_store(root)
    assert report["torn"] == report["corrupt"] == report["foreign"] == 0
    assert report["kept"] >= writers * puts_per_writer
